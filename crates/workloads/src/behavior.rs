//! Per-block dynamic behaviour: instruction mixes, memory-access
//! patterns, and branch-direction patterns.
//!
//! These are the levers that make two program phases *perform*
//! differently under the detailed simulator: a phase whose blocks stream
//! through a 16 MiB region with dependent loads has a very different CPI
//! and cache profile from one spinning over an 8 KiB L1-resident buffer.

use mlpa_isa::rng::SplitMix64;

/// Fractions of each non-branch operation class inside a block body.
///
/// Whatever probability is left after all listed classes becomes plain
/// integer-ALU work. Fractions must be non-negative and sum to at most 1.
///
/// # Example
///
/// ```
/// use mlpa_workloads::behavior::InstMix;
///
/// let mix = InstMix { load: 0.3, store: 0.1, ..InstMix::default() };
/// mix.validate().unwrap();
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstMix {
    /// Fraction of loads.
    pub load: f64,
    /// Fraction of stores.
    pub store: f64,
    /// Fraction of FP add-class operations.
    pub fp_add: f64,
    /// Fraction of FP multiplies.
    pub fp_mul: f64,
    /// Fraction of FP divides.
    pub fp_div: f64,
    /// Fraction of integer multiplies.
    pub int_mul: f64,
    /// Fraction of integer divides.
    pub int_div: f64,
}

impl Default for InstMix {
    /// A bland integer mix: 25 % loads, 10 % stores, rest ALU.
    fn default() -> Self {
        InstMix {
            load: 0.25,
            store: 0.10,
            fp_add: 0.0,
            fp_mul: 0.0,
            fp_div: 0.0,
            int_mul: 0.0,
            int_div: 0.0,
        }
    }
}

impl InstMix {
    /// An integer-benchmark mix (SPECint-flavoured).
    pub fn int() -> InstMix {
        InstMix::default()
    }

    /// A floating-point-benchmark mix (SPECfp-flavoured).
    pub fn fp() -> InstMix {
        InstMix {
            load: 0.28,
            store: 0.10,
            fp_add: 0.18,
            fp_mul: 0.12,
            fp_div: 0.01,
            int_mul: 0.01,
            int_div: 0.0,
        }
    }

    /// Sum of all explicit fractions.
    pub fn total(&self) -> f64 {
        self.load
            + self.store
            + self.fp_add
            + self.fp_mul
            + self.fp_div
            + self.int_mul
            + self.int_div
    }

    /// Check that all fractions are non-negative and sum to at most 1.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let parts = [
            ("load", self.load),
            ("store", self.store),
            ("fp_add", self.fp_add),
            ("fp_mul", self.fp_mul),
            ("fp_div", self.fp_div),
            ("int_mul", self.int_mul),
            ("int_div", self.int_div),
        ];
        for (name, v) in parts {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("instruction-mix fraction `{name}` = {v} out of [0, 1]"));
            }
        }
        let t = self.total();
        if t > 1.0 + 1e-9 {
            return Err(format!("instruction-mix fractions sum to {t} > 1"));
        }
        Ok(())
    }
}

/// Memory-access pattern of a block's loads and stores.
///
/// The `working_set` is the number of bytes the pattern touches; relative
/// to the cache capacities of Table I it determines where in the
/// hierarchy the block's accesses hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MemoryPattern {
    /// Sequential walk with the given stride (bytes) through the working
    /// set, wrapping around. Spatial locality ∝ 1/stride.
    Strided {
        /// Stride between consecutive accesses in bytes.
        stride: u64,
        /// Region size in bytes.
        working_set: u64,
    },
    /// Uniformly random accesses within the working set. Temporal
    /// locality ∝ cache-capacity / working-set.
    RandomInSet {
        /// Region size in bytes.
        working_set: u64,
    },
    /// Random accesses where each load *depends on the previous load's
    /// result* (the generator wires the register operands into a chain),
    /// serialising misses like linked-list traversal.
    PointerChase {
        /// Region size in bytes.
        working_set: u64,
    },
}

impl MemoryPattern {
    /// Bytes this pattern touches.
    pub fn working_set(&self) -> u64 {
        match *self {
            MemoryPattern::Strided { working_set, .. }
            | MemoryPattern::RandomInSet { working_set }
            | MemoryPattern::PointerChase { working_set } => working_set,
        }
    }

    /// Whether loads form a dependence chain.
    pub fn is_dependent(&self) -> bool {
        matches!(self, MemoryPattern::PointerChase { .. })
    }

    /// Check the pattern's parameters.
    ///
    /// # Errors
    ///
    /// Returns a message if the working set is zero or a stride is zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.working_set() == 0 {
            return Err("memory pattern working set must be positive".into());
        }
        if let MemoryPattern::Strided { stride, .. } = self {
            if *stride == 0 {
                return Err("strided pattern stride must be positive".into());
            }
        }
        Ok(())
    }
}

impl Default for MemoryPattern {
    /// An L1-friendly 8 KiB strided walk.
    fn default() -> Self {
        MemoryPattern::Strided { stride: 8, working_set: 8 * 1024 }
    }
}

/// Mutable cursor that walks a [`MemoryPattern`], producing effective
/// addresses relative to a region base.
#[derive(Debug, Clone)]
pub struct MemoryCursor {
    pattern: MemoryPattern,
    base: u64,
    pos: u64,
    rng: SplitMix64,
    /// Multiplicative perturbation of the working set, used by phase
    /// drift (1.0 = nominal).
    scale: f64,
}

impl MemoryCursor {
    /// Create a cursor over `pattern` with addresses offset by `base`.
    pub fn new(pattern: MemoryPattern, base: u64, rng: SplitMix64) -> MemoryCursor {
        MemoryCursor { pattern, base, pos: 0, rng, scale: 1.0 }
    }

    /// Set the working-set scale factor (clamped to `[0.25, 4.0]`);
    /// phase drift uses this to let locality evolve over the run.
    pub fn set_scale(&mut self, scale: f64) {
        self.scale = scale.clamp(0.25, 4.0);
    }

    fn effective_set(&self) -> u64 {
        let ws = self.pattern.working_set() as f64 * self.scale;
        (ws as u64).max(8)
    }

    /// Skip `n` addresses in O(1), leaving the cursor exactly where `n`
    /// [`MemoryCursor::next_addr`] calls would have: strided walks
    /// advance the position by `stride × n` (wrapping arithmetic equals
    /// `n` single-stride advances mod 2⁶⁴), random patterns skip `n`
    /// RNG draws ([`SplitMix64::skip`]; each address costs exactly one
    /// draw). Addresses never feed back into control flow, so a stream
    /// fast-forwarding to a mid-trace segment can skip them wholesale.
    pub fn skip(&mut self, n: u64) {
        match self.pattern {
            MemoryPattern::Strided { stride, .. } => {
                self.pos = self.pos.wrapping_add(stride.wrapping_mul(n));
            }
            MemoryPattern::RandomInSet { .. } | MemoryPattern::PointerChase { .. } => {
                self.rng.skip(n);
            }
        }
    }

    /// Next effective address (8-byte aligned).
    pub fn next_addr(&mut self) -> u64 {
        let set = self.effective_set();
        let off = match self.pattern {
            MemoryPattern::Strided { stride, .. } => {
                let o = self.pos % set;
                self.pos = self.pos.wrapping_add(stride);
                o
            }
            MemoryPattern::RandomInSet { .. } | MemoryPattern::PointerChase { .. } => {
                self.rng.range_u64(set)
            }
        };
        self.base + (off & !7)
    }
}

/// Direction pattern of a block's data-dependent conditional branch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BranchPattern {
    /// Taken with fixed probability `p` independently each time. `p`
    /// near 0 or 1 is predictable by a bimodal predictor; `p ≈ 0.5` is
    /// hard for everything.
    Biased {
        /// Probability of taken.
        p_taken: f64,
    },
    /// Deterministic repeating pattern: taken for `taken` occurrences,
    /// then not-taken for `not_taken`, and so on. Learnable by a
    /// history-based (gshare) predictor when the period is short.
    Periodic {
        /// Consecutive taken outcomes per period.
        taken: u16,
        /// Consecutive not-taken outcomes per period.
        not_taken: u16,
    },
}

impl Default for BranchPattern {
    /// A well-behaved mostly-not-taken branch.
    fn default() -> Self {
        BranchPattern::Biased { p_taken: 0.1 }
    }
}

impl BranchPattern {
    /// Check the pattern's parameters.
    ///
    /// # Errors
    ///
    /// Returns a message if a probability is outside `[0, 1]` or a
    /// periodic pattern has an empty period.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            BranchPattern::Biased { p_taken } => {
                if !(0.0..=1.0).contains(&p_taken) {
                    return Err(format!("branch p_taken = {p_taken} out of [0, 1]"));
                }
            }
            BranchPattern::Periodic { taken, not_taken } => {
                if taken == 0 && not_taken == 0 {
                    return Err("periodic branch pattern must have a non-empty period".into());
                }
            }
        }
        Ok(())
    }
}

/// Mutable cursor producing a [`BranchPattern`]'s direction sequence.
#[derive(Debug, Clone)]
pub struct BranchCursor {
    pattern: BranchPattern,
    rng: SplitMix64,
    phase: u32,
    /// Additive perturbation of `p_taken` applied by phase drift.
    bias_shift: f64,
}

impl BranchCursor {
    /// Create a cursor over `pattern`.
    pub fn new(pattern: BranchPattern, rng: SplitMix64) -> BranchCursor {
        BranchCursor { pattern, rng, phase: 0, bias_shift: 0.0 }
    }

    /// Shift the taken probability of biased patterns (clamped so the
    /// effective probability stays in `[0, 1]`).
    pub fn set_bias_shift(&mut self, shift: f64) {
        self.bias_shift = shift;
    }

    /// Next direction.
    pub fn next_taken(&mut self) -> bool {
        match self.pattern {
            BranchPattern::Biased { p_taken } => {
                self.rng.chance((p_taken + self.bias_shift).clamp(0.0, 1.0))
            }
            BranchPattern::Periodic { taken, not_taken } => {
                let period = u32::from(taken) + u32::from(not_taken);
                let t = self.phase % period < u32::from(taken);
                self.phase = self.phase.wrapping_add(1);
                t
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_validation() {
        InstMix::int().validate().unwrap();
        InstMix::fp().validate().unwrap();
        let bad = InstMix { load: 0.9, store: 0.5, ..InstMix::default() };
        assert!(bad.validate().is_err());
        let neg = InstMix { load: -0.1, ..InstMix::default() };
        assert!(neg.validate().is_err());
    }

    #[test]
    fn strided_cursor_walks_and_wraps() {
        let p = MemoryPattern::Strided { stride: 8, working_set: 32 };
        let mut c = MemoryCursor::new(p, 0x1000, SplitMix64::new(1));
        let addrs: Vec<u64> = (0..6).map(|_| c.next_addr()).collect();
        assert_eq!(addrs, vec![0x1000, 0x1008, 0x1010, 0x1018, 0x1000, 0x1008]);
    }

    #[test]
    fn random_cursor_stays_in_set() {
        let p = MemoryPattern::RandomInSet { working_set: 4096 };
        let mut c = MemoryCursor::new(p, 0x10_0000, SplitMix64::new(2));
        for _ in 0..1000 {
            let a = c.next_addr();
            assert!((0x10_0000..0x10_1000).contains(&a));
            assert_eq!(a % 8, 0, "addresses are 8-byte aligned");
        }
    }

    #[test]
    fn scale_shrinks_effective_set() {
        let p = MemoryPattern::RandomInSet { working_set: 1 << 20 };
        let mut c = MemoryCursor::new(p, 0, SplitMix64::new(3));
        c.set_scale(0.25);
        for _ in 0..1000 {
            assert!(c.next_addr() < (1 << 18));
        }
    }

    #[test]
    fn cursor_skip_matches_sequential_draws() {
        let patterns = [
            MemoryPattern::Strided { stride: 24, working_set: 1000 },
            MemoryPattern::RandomInSet { working_set: 4096 },
            MemoryPattern::PointerChase { working_set: 512 },
        ];
        for p in patterns {
            for n in [0u64, 1, 5, 97, 10_000] {
                let mut seq = MemoryCursor::new(p, 0x2000, SplitMix64::new(13));
                for _ in 0..n {
                    let _ = seq.next_addr();
                }
                let mut jump = MemoryCursor::new(p, 0x2000, SplitMix64::new(13));
                jump.skip(n);
                for _ in 0..8 {
                    assert_eq!(seq.next_addr(), jump.next_addr(), "{p:?} skip({n}) diverged");
                }
            }
        }
    }

    #[test]
    fn cursor_skip_is_scale_independent() {
        // Skipping under one scale then drawing under another matches
        // sequential draws with the same scale switch: the draw count,
        // not the effective set, determines RNG/position state.
        let p = MemoryPattern::RandomInSet { working_set: 1 << 16 };
        let mut seq = MemoryCursor::new(p, 0, SplitMix64::new(21));
        let mut jump = MemoryCursor::new(p, 0, SplitMix64::new(21));
        for _ in 0..50 {
            let _ = seq.next_addr();
        }
        jump.skip(50);
        seq.set_scale(0.5);
        jump.set_scale(0.5);
        for _ in 0..8 {
            assert_eq!(seq.next_addr(), jump.next_addr());
        }
    }

    #[test]
    fn pattern_validation() {
        MemoryPattern::default().validate().unwrap();
        assert!(MemoryPattern::Strided { stride: 0, working_set: 64 }.validate().is_err());
        assert!(MemoryPattern::RandomInSet { working_set: 0 }.validate().is_err());
        BranchPattern::default().validate().unwrap();
        assert!(BranchPattern::Biased { p_taken: 1.5 }.validate().is_err());
        assert!(BranchPattern::Periodic { taken: 0, not_taken: 0 }.validate().is_err());
    }

    #[test]
    fn biased_branch_respects_probability() {
        let mut c = BranchCursor::new(BranchPattern::Biased { p_taken: 0.8 }, SplitMix64::new(4));
        let taken = (0..10_000).filter(|_| c.next_taken()).count();
        assert!((7_700..8_300).contains(&taken), "taken count {taken}");
    }

    #[test]
    fn periodic_branch_repeats_exactly() {
        let mut c = BranchCursor::new(
            BranchPattern::Periodic { taken: 3, not_taken: 1 },
            SplitMix64::new(5),
        );
        let seq: Vec<bool> = (0..8).map(|_| c.next_taken()).collect();
        assert_eq!(seq, vec![true, true, true, false, true, true, true, false]);
    }

    #[test]
    fn bias_shift_clamps() {
        let mut c = BranchCursor::new(BranchPattern::Biased { p_taken: 0.9 }, SplitMix64::new(6));
        c.set_bias_shift(0.5);
        assert!((0..1000).all(|_| c.next_taken()), "p clamps to 1.0");
    }

    #[test]
    fn pointer_chase_is_dependent() {
        assert!(MemoryPattern::PointerChase { working_set: 64 }.is_dependent());
        assert!(!MemoryPattern::default().is_dependent());
    }
}
