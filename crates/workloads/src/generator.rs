//! Streaming trace generation from a compiled benchmark.
//!
//! [`WorkloadStream`] walks the benchmark's structure — init loop, outer
//! loop over the script, inner loops over the weighted block families,
//! tail loop — and emits one dynamic basic block per call, patching
//! memory addresses and branch outcomes from the per-family behaviour
//! cursors. Two streams over the same [`CompiledBenchmark`] produce
//! bit-identical traces: all randomness is forked from the benchmark
//! seed in a fixed order.

use crate::behavior::{BranchCursor, MemoryCursor};
use crate::build::{CompiledBenchmark, PhaseRt};
use mlpa_isa::rng::SplitMix64;
use mlpa_isa::stream::{BlockMeta, InstructionStream};
use mlpa_isa::{BlockId, BranchInfo, BranchKind, Instruction};

/// Hard cap on a family's repetitions in one inner iteration, as a
/// multiple of its nominal count — keeps pathological jitter draws from
/// distorting iteration sizes.
const MAX_REPS_FACTOR: f64 = 6.0;

/// Dynamic state of one block family.
#[derive(Debug, Clone)]
struct FamState {
    mem: MemoryCursor,
    branch: BranchCursor,
}

/// Which structural run the cursor is in (`Script(i)` = *next* script
/// entry to start).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Run {
    Init,
    Script(usize),
    Tail,
    Done,
}

/// Micro-position within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Micro {
    NextRun,
    IterBegin,
    FamNext,
    AfterHead,
    AfterAlt,
    Done,
}

/// One slot in the emission sequence.
#[derive(Debug, Clone, Copy)]
struct Slot {
    block: BlockId,
    /// Flat family index for body blocks; `None` for headers.
    fam: Option<usize>,
}

/// Identifies which compiled phase drives the current run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PhaseSel {
    Phase(usize),
    Init,
    Tail,
}

/// A deterministic [`InstructionStream`] over a compiled benchmark.
///
/// # Example
///
/// ```
/// use mlpa_isa::stream::drain_count;
/// use mlpa_workloads::spec::BenchmarkSpec;
/// use mlpa_workloads::{CompiledBenchmark, WorkloadStream};
///
/// let cb = CompiledBenchmark::compile(&BenchmarkSpec::default())?;
/// let stats = drain_count(WorkloadStream::new(&cb));
/// // The trace lands near the spec's nominal length.
/// let nominal = cb.spec().nominal_insts() as f64;
/// assert!((stats.instructions as f64) > nominal * 0.6);
/// assert!((stats.instructions as f64) < nominal * 1.6);
/// # Ok::<(), String>(())
/// ```
/// Cloning a stream forks it at its current position: both streams
/// then emit the identical remaining trace independently. Plan
/// executors use this to let a detailed simulator and a functional
/// warmer traverse the same region without re-generating the prefix.
#[derive(Debug, Clone)]
pub struct WorkloadStream<'a> {
    cb: &'a CompiledBenchmark,
    /// Per-family dynamic cursors, flat-indexed: all script phases in
    /// order, then init, then tail.
    fams: Vec<FamState>,
    phase_base: Vec<usize>,
    init_base: usize,
    tail_base: usize,
    ctrl: SplitMix64,
    emitted: u64,
    total_nominal: u64,

    run: Run,
    micro: Micro,
    sel: PhaseSel,
    inner_j: u64,
    inner_total: u64,
    fam_idx: usize,
    rep_idx: u32,
    reps: Vec<u32>,
    take_alt: bool,
    lookahead: Option<Slot>,
    started: bool,
}

impl<'a> WorkloadStream<'a> {
    /// Create a stream positioned at the start of the benchmark.
    pub fn new(cb: &'a CompiledBenchmark) -> WorkloadStream<'a> {
        let seed = SplitMix64::new(cb.spec().seed);
        let mut fams = Vec::new();
        let mut phase_base = Vec::new();
        let mut flat = 0usize;

        fn push_phase(rt: &PhaseRt, seed: &SplitMix64, fams: &mut Vec<FamState>, flat: &mut usize) {
            for f in &rt.families {
                fams.push(FamState {
                    mem: MemoryCursor::new(
                        f.mem,
                        f.data_base,
                        seed.fork(0x4D45_4D00 ^ *flat as u64),
                    ),
                    branch: BranchCursor::new(f.branch, seed.fork(0x4252_0000 ^ *flat as u64)),
                });
                *flat += 1;
            }
        }

        for p in cb.phases() {
            phase_base.push(flat);
            push_phase(p, &seed, &mut fams, &mut flat);
        }
        let init_base = flat;
        push_phase(cb.init().0, &seed, &mut fams, &mut flat);
        let tail_base = flat;
        push_phase(cb.tail().0, &seed, &mut fams, &mut flat);

        WorkloadStream {
            cb,
            fams,
            phase_base,
            init_base,
            tail_base,
            ctrl: seed.fork(0x5452_4C43),
            emitted: 0,
            total_nominal: cb.spec().nominal_insts().max(1),
            run: Run::Init,
            micro: Micro::NextRun,
            sel: PhaseSel::Init,
            inner_j: 0,
            inner_total: 0,
            fam_idx: 0,
            rep_idx: 0,
            reps: Vec::new(),
            take_alt: false,
            lookahead: None,
            started: false,
        }
    }

    /// Instructions emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    fn phase_rt(&self) -> &'a PhaseRt {
        match self.sel {
            PhaseSel::Init => self.cb.init().0,
            PhaseSel::Tail => self.cb.tail().0,
            PhaseSel::Phase(i) => &self.cb.phases()[i],
        }
    }

    fn flat_base(&self) -> usize {
        match self.sel {
            PhaseSel::Init => self.init_base,
            PhaseSel::Tail => self.tail_base,
            PhaseSel::Phase(i) => self.phase_base[i],
        }
    }

    /// Progress through the nominal run, in `[0, 1]`.
    fn progress(&self) -> f64 {
        (self.emitted as f64 / self.total_nominal as f64).clamp(0.0, 1.0)
    }

    /// Start the next run; returns the outer-header slot for script runs.
    fn begin_next_run(&mut self) -> Option<Slot> {
        loop {
            match self.run {
                Run::Init => {
                    let (_, iters) = self.cb.init();
                    self.sel = PhaseSel::Init;
                    self.inner_j = 0;
                    self.inner_total = iters;
                    self.run = Run::Script(0);
                    self.micro = Micro::IterBegin;
                    return None;
                }
                Run::Script(i) => {
                    if i >= self.cb.spec().script.len() {
                        self.run = Run::Tail;
                        continue;
                    }
                    let entry = self.cb.spec().script[i];
                    let rt = &self.cb.phases()[entry.phase];
                    self.sel = PhaseSel::Phase(entry.phase);
                    self.inner_j = 0;
                    self.inner_total =
                        ((entry.insts as f64 / rt.expected_inner).round() as u64).max(1);
                    self.run = Run::Script(i + 1);
                    self.micro = Micro::IterBegin;
                    return Some(Slot { block: self.cb.outer_header(), fam: None });
                }
                Run::Tail => {
                    let (_, iters) = self.cb.tail();
                    self.sel = PhaseSel::Tail;
                    self.inner_j = 0;
                    self.inner_total = iters;
                    self.run = Run::Done;
                    self.micro = Micro::IterBegin;
                    return None;
                }
                Run::Done => {
                    self.micro = Micro::Done;
                    return None;
                }
            }
        }
    }

    /// Draw this inner iteration's repetition counts and update the
    /// perf-drift knobs on the behaviour cursors.
    fn compute_reps(&mut self) {
        let rt = self.phase_rt();
        let g = self.progress();
        let base = self.flat_base();
        self.reps.clear();
        for (k, f) in rt.families.iter().enumerate() {
            let drift_mult = (rt.drift * f.drift_dir * (g - 0.5)).exp();
            let jitter = (rt.noise * self.ctrl.next_gauss()).exp();
            let cap = (f.base_reps * MAX_REPS_FACTOR + 8.0).round();
            let m = (f.base_reps * drift_mult * jitter).round().clamp(0.0, cap);
            self.reps.push(m as u32);

            if rt.perf_drift > 0.0 {
                let knob = rt.perf_drift * rt.drift * f.drift_dir * (g - 0.5);
                let st = &mut self.fams[base + k];
                st.mem.set_scale(knob.exp());
                st.branch.set_bias_shift(rt.perf_drift * 0.3 * (g - 0.5));
            }
        }
        // Guarantee at least one block instance per iteration so headers
        // never chain emptily.
        if self.reps.iter().all(|&m| m == 0) {
            self.reps[0] = 1;
        }
    }

    /// Advance the position cursor to the next slot.
    fn advance(&mut self) -> Option<Slot> {
        loop {
            match self.micro {
                Micro::NextRun => {
                    if let Some(slot) = self.begin_next_run() {
                        return Some(slot);
                    }
                    if self.micro == Micro::Done {
                        return None;
                    }
                }
                Micro::IterBegin => {
                    if self.inner_j < self.inner_total {
                        self.inner_j += 1;
                        self.compute_reps();
                        self.fam_idx = 0;
                        self.rep_idx = 0;
                        self.micro = Micro::FamNext;
                        return Some(Slot { block: self.phase_rt().header, fam: None });
                    }
                    self.micro = Micro::NextRun;
                }
                Micro::FamNext => {
                    let rt = self.phase_rt();
                    if self.fam_idx >= rt.families.len() {
                        self.micro = Micro::IterBegin;
                        continue;
                    }
                    if self.rep_idx >= self.reps[self.fam_idx] {
                        self.fam_idx += 1;
                        self.rep_idx = 0;
                        continue;
                    }
                    let flat = self.flat_base() + self.fam_idx;
                    // The head's pattern branch: taken skips the alt block.
                    self.take_alt = !self.fams[flat].branch.next_taken();
                    self.micro = Micro::AfterHead;
                    return Some(Slot { block: rt.families[self.fam_idx].head, fam: Some(flat) });
                }
                Micro::AfterHead => {
                    let rt = self.phase_rt();
                    let flat = self.flat_base() + self.fam_idx;
                    self.micro = Micro::AfterAlt;
                    if self.take_alt {
                        return Some(Slot {
                            block: rt.families[self.fam_idx].alt,
                            fam: Some(flat),
                        });
                    }
                }
                Micro::AfterAlt => {
                    let rt = self.phase_rt();
                    let flat = self.flat_base() + self.fam_idx;
                    self.rep_idx += 1;
                    self.micro = Micro::FamNext;
                    return Some(Slot { block: rt.families[self.fam_idx].cont, fam: Some(flat) });
                }
                Micro::Done => return None,
            }
        }
    }

    /// Emit `slot` into `out`, patching memory addresses and terminator.
    fn emit(&mut self, slot: Slot, next: Option<Slot>, out: &mut Vec<Instruction>) -> BlockId {
        let t = self.cb.template(slot.block);
        out.clear();
        out.extend_from_slice(&t.insts);
        if let Some(fi) = slot.fam {
            let cursor = &mut self.fams[fi].mem;
            for &s in &t.mem_slots {
                out[s as usize].addr = cursor.next_addr();
            }
        }
        let last = out.len() - 1;
        let (kind, taken, target) = match next {
            Some(n) => {
                let fallthrough = slot.block.index() + 1 == n.block.index();
                (BranchKind::Conditional, !fallthrough, n.block)
            }
            // Program end: model as a final return.
            None => (BranchKind::Return, true, slot.block),
        };
        out[last].branch = Some(BranchInfo { kind, taken, target });
        self.emitted += out.len() as u64;
        slot.block
    }

    /// [`WorkloadStream::emit`] minus materialisation: replicate every
    /// state effect of emitting `slot` — the memory cursor's draws
    /// (collapsed to an O(1) [`MemoryCursor::skip`]) and the emitted
    /// counter — without touching instruction storage. Terminator
    /// patching consumes no stream state, so skipping it is free.
    fn emit_meta(&mut self, slot: Slot) -> BlockMeta {
        let t = self.cb.template(slot.block);
        if let Some(fi) = slot.fam {
            self.fams[fi].mem.skip(t.mem_slots.len() as u64);
        }
        let insts = t.insts.len() as u64;
        self.emitted += insts;
        BlockMeta { id: slot.block, insts }
    }
}

impl InstructionStream for WorkloadStream<'_> {
    fn next_block(&mut self, out: &mut Vec<Instruction>) -> Option<BlockId> {
        if !self.started {
            self.started = true;
            self.lookahead = self.advance();
        }
        let cur = self.lookahead?;
        self.lookahead = self.advance();
        Some(self.emit(cur, self.lookahead, out))
    }

    /// Deterministic mid-trace entry: meta steps run the full control
    /// state machine (rep draws, branch draws, run transitions) but
    /// skip address materialisation, so fast-forwarding to segment *k*
    /// costs a fraction of emitting the prefix — and a subsequent
    /// [`next_block`](InstructionStream::next_block) continues the
    /// trace bit-identically (pinned by
    /// `meta_walk_continues_bit_identically`).
    fn next_block_meta(&mut self, _scratch: &mut Vec<Instruction>) -> Option<BlockMeta> {
        if !self.started {
            self.started = true;
            self.lookahead = self.advance();
        }
        let cur = self.lookahead?;
        self.lookahead = self.advance();
        Some(self.emit_meta(cur))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{BenchmarkSpec, PhaseSpec, ScriptEntry};
    use mlpa_isa::stream::drain_count;

    fn small_spec() -> BenchmarkSpec {
        BenchmarkSpec {
            name: "gen-test".into(),
            seed: 7,
            init_insts: 500,
            tail_insts: 300,
            phases: vec![PhaseSpec::default()],
            script: vec![ScriptEntry::new(0, 20_000); 4],
        }
    }

    #[test]
    fn trace_length_tracks_nominal() {
        let cb = CompiledBenchmark::compile(&small_spec()).unwrap();
        let stats = drain_count(WorkloadStream::new(&cb));
        let nominal = cb.spec().nominal_insts() as f64;
        let actual = stats.instructions as f64;
        assert!((actual / nominal - 1.0).abs() < 0.35, "trace {actual} vs nominal {nominal}");
    }

    #[test]
    fn traces_are_bit_identical() {
        let cb = CompiledBenchmark::compile(&small_spec()).unwrap();
        let mut a = WorkloadStream::new(&cb);
        let mut b = WorkloadStream::new(&cb);
        let (mut ba, mut bb) = (Vec::new(), Vec::new());
        loop {
            let ra = a.next_block(&mut ba);
            let rb = b.next_block(&mut bb);
            assert_eq!(ra, rb);
            assert_eq!(ba, bb);
            if ra.is_none() {
                break;
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut s1 = small_spec();
        let mut s2 = small_spec();
        s1.seed = 1;
        s2.seed = 2;
        let c1 = CompiledBenchmark::compile(&s1).unwrap();
        let c2 = CompiledBenchmark::compile(&s2).unwrap();
        // Same structure, but dynamic contents (addresses) differ.
        let mut a = WorkloadStream::new(&c1);
        let mut b = WorkloadStream::new(&c2);
        let (mut ba, mut bb) = (Vec::new(), Vec::new());
        let mut any_diff = false;
        for _ in 0..500 {
            let (ra, rb) = (a.next_block(&mut ba), b.next_block(&mut bb));
            if ra.is_none() || rb.is_none() {
                break;
            }
            if ba != bb || ra != rb {
                any_diff = true;
                break;
            }
        }
        assert!(any_diff, "seeds 1 and 2 produced identical prefixes");
    }

    #[test]
    fn every_block_terminates_with_resolved_branch() {
        let cb = CompiledBenchmark::compile(&small_spec()).unwrap();
        let mut s = WorkloadStream::new(&cb);
        let mut buf = Vec::new();
        let mut prev: Option<(BlockId, BranchInfo)> = None;
        while let Some(id) = s.next_block(&mut buf) {
            let term = buf.last().unwrap();
            assert!(term.is_branch(), "last instruction must be the terminator");
            let info = term.branch.unwrap();
            if let Some((pid, pinfo)) = prev {
                assert_eq!(
                    pinfo.target, id,
                    "terminator of {pid} must point at the actual successor"
                );
                // Taken flag consistent with layout fall-through.
                assert_eq!(pinfo.taken, pid.index() + 1 != id.index());
            }
            prev = Some((id, info));
        }
        // Final block is a return.
        assert_eq!(prev.unwrap().1.kind, BranchKind::Return);
    }

    #[test]
    fn memory_ops_get_patched_addresses() {
        let cb = CompiledBenchmark::compile(&small_spec()).unwrap();
        let mut s = WorkloadStream::new(&cb);
        let mut buf = Vec::new();
        let mut saw_mem = 0u32;
        for _ in 0..200 {
            if s.next_block(&mut buf).is_none() {
                break;
            }
            for i in &buf {
                if i.is_mem() {
                    saw_mem += 1;
                    assert!(i.addr >= 0x1000_0000, "address {:#x} not in data segment", i.addr);
                }
            }
        }
        assert!(saw_mem > 50, "expected plenty of memory ops, saw {saw_mem}");
    }

    #[test]
    fn outer_header_appears_once_per_script_entry() {
        let cb = CompiledBenchmark::compile(&small_spec()).unwrap();
        let mut s = WorkloadStream::new(&cb);
        let mut buf = Vec::new();
        let mut outer_count = 0;
        while let Some(id) = s.next_block(&mut buf) {
            if id == cb.outer_header() {
                outer_count += 1;
            }
        }
        assert_eq!(outer_count, cb.spec().script.len());
    }

    #[test]
    fn meta_walk_matches_full_walk_shape() {
        let cb = CompiledBenchmark::compile(&small_spec()).unwrap();
        let mut full = WorkloadStream::new(&cb);
        let mut meta = WorkloadStream::new(&cb);
        let (mut buf, mut scratch) = (Vec::new(), Vec::new());
        loop {
            let f = full.next_block(&mut buf);
            let m = meta.next_block_meta(&mut scratch);
            assert_eq!(f, m.map(|m| m.id));
            assert_eq!(full.emitted(), meta.emitted());
            match m {
                Some(m) => assert_eq!(m.insts, buf.len() as u64),
                None => break,
            }
        }
    }

    #[test]
    fn meta_walk_continues_bit_identically() {
        // Walk a prefix with meta steps, then switch to full emission:
        // the suffix must match a stream that emitted fully throughout,
        // at every possible switch point granularity we sample.
        let cb = CompiledBenchmark::compile(&small_spec()).unwrap();
        for switch_after in [0usize, 1, 7, 50, 400, 2000] {
            let mut reference = WorkloadStream::new(&cb);
            let (mut rbuf, mut scratch) = (Vec::new(), Vec::new());
            for _ in 0..switch_after {
                if reference.next_block(&mut rbuf).is_none() {
                    break;
                }
            }
            let mut skipped = WorkloadStream::new(&cb);
            for _ in 0..switch_after {
                if skipped.next_block_meta(&mut scratch).is_none() {
                    break;
                }
            }
            assert_eq!(reference.emitted(), skipped.emitted());
            let mut sbuf = Vec::new();
            loop {
                let r = reference.next_block(&mut rbuf);
                let s = skipped.next_block(&mut sbuf);
                assert_eq!(r, s, "block id diverged after meta prefix of {switch_after}");
                assert_eq!(rbuf, sbuf, "contents diverged after meta prefix of {switch_after}");
                if r.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn interleaved_meta_and_full_steps_stay_exact() {
        // Alternate meta/full arbitrarily (driven by a seeded RNG) and
        // check the full steps agree with an all-full reference stream.
        let cb = CompiledBenchmark::compile(&small_spec()).unwrap();
        let mut reference = WorkloadStream::new(&cb);
        let mut mixed = WorkloadStream::new(&cb);
        let (mut rbuf, mut mbuf, mut scratch) = (Vec::new(), Vec::new(), Vec::new());
        let mut rng = SplitMix64::new(0xC0FFEE);
        loop {
            let r = reference.next_block(&mut rbuf);
            if rng.chance(0.5) {
                let m = mixed.next_block_meta(&mut scratch);
                assert_eq!(r, m.map(|m| m.id));
                if r.is_none() {
                    break;
                }
            } else {
                let m = mixed.next_block(&mut mbuf);
                assert_eq!(r, m);
                if r.is_none() {
                    break;
                }
                assert_eq!(rbuf, mbuf);
            }
        }
    }

    #[test]
    fn emitted_counter_matches_drained_total() {
        let cb = CompiledBenchmark::compile(&small_spec()).unwrap();
        let mut s = WorkloadStream::new(&cb);
        let mut buf = Vec::new();
        let mut total = 0u64;
        while s.next_block(&mut buf).is_some() {
            total += buf.len() as u64;
        }
        assert_eq!(s.emitted(), total);
    }
}
