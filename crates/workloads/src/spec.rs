//! Benchmark specifications: the declarative description a synthetic
//! workload is generated from.
//!
//! A [`BenchmarkSpec`] describes a program with the hierarchical phase
//! structure the paper's methodology exploits:
//!
//! ```text
//! init section (runs once)
//! outer loop:                      <- coarse granularity: one iteration
//!     iteration i runs phase P(i)     = one coarse interval
//!     inner loop of P(i):          <- fine granularity lives in here
//!         weighted block instances, drifting + jittering
//! tail section (runs once)
//! ```
//!
//! The *script* (`Vec<ScriptEntry>`) assigns each outer iteration a phase
//! and a target instruction count; it is the knob that calibrates every
//! per-benchmark fact the paper reports (how many coarse phases exist,
//! where each phase first occurs, how irregular iteration sizes are —
//! e.g. gcc's 56 wildly-sized iterations).

use crate::behavior::{BranchPattern, InstMix, MemoryPattern};

/// Index of a phase within a [`BenchmarkSpec`].
pub type PhaseId = usize;

/// Description of one body-block family inside a phase.
///
/// Each `BlockSpec` expands to three static basic blocks (`head`, `alt`,
/// `cont`): `head` ends in the pattern-driven conditional branch that
/// either skips (`taken`) or falls into `alt`, and `cont` ends in the
/// self-repeat backward branch. How *often* the family executes per inner
/// iteration is its (drifted, jittered) weight.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSpec {
    /// Total instructions across head+alt+cont bodies (split roughly
    /// 40/20/40), excluding terminators. Minimum 6.
    pub len: u32,
    /// Base execution weight within the phase (relative).
    pub weight: f64,
    /// Direction (`-1.0..=1.0`) this family's weight moves as the phase
    /// drifts over the run; families with opposite signs trade places,
    /// which is what spreads fine-grained clusters across time.
    pub drift_dir: f64,
    /// Instruction mix of the block bodies.
    pub mix: InstMix,
    /// Memory-access pattern of the block's loads/stores.
    pub mem: MemoryPattern,
    /// Direction pattern of the head block's conditional branch.
    pub branch: BranchPattern,
    /// Probability that an operand reads a recently produced register
    /// (dependence density; higher = less ILP = higher CPI).
    pub dep_density: f64,
}

impl Default for BlockSpec {
    fn default() -> Self {
        BlockSpec {
            len: 24,
            weight: 1.0,
            drift_dir: 0.0,
            mix: InstMix::default(),
            mem: MemoryPattern::default(),
            branch: BranchPattern::default(),
            dep_density: 0.4,
        }
    }
}

impl BlockSpec {
    /// Check all parameters.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.len < 6 {
            return Err(format!("block len {} too small (min 6)", self.len));
        }
        if !(self.weight > 0.0 && self.weight.is_finite()) {
            return Err(format!("block weight {} must be positive", self.weight));
        }
        if !(-1.0..=1.0).contains(&self.drift_dir) {
            return Err(format!("drift_dir {} out of [-1, 1]", self.drift_dir));
        }
        if !(0.0..=1.0).contains(&self.dep_density) {
            return Err(format!("dep_density {} out of [0, 1]", self.dep_density));
        }
        self.mix.validate()?;
        self.mem.validate()?;
        self.branch.validate()
    }
}

/// One program phase: a set of block families plus the phase-level
/// behaviour knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Human-readable phase name.
    pub name: String,
    /// The block families making up the phase body.
    pub blocks: Vec<BlockSpec>,
    /// Approximate instructions per inner-loop iteration.
    pub inner_iter_insts: u64,
    /// Strength of the slow weight drift over the whole run (0 = static
    /// phase; 1–3 = pronounced drift). Drift is what gives fine-grained
    /// clustering late-program clusters.
    pub drift: f64,
    /// Per-inner-iteration log-normal weight jitter (σ). Jitter is the
    /// fine-grained "chaos" that coarse intervals average away (Fig. 1).
    pub noise: f64,
    /// Fraction (0..1) of the drift that also shifts *performance*
    /// behaviour (working-set scale, branch bias). Small values keep
    /// earliest-instance sampling (COASTS) accurate, per Table II.
    pub perf_drift: f64,
}

impl Default for PhaseSpec {
    fn default() -> Self {
        PhaseSpec {
            name: "phase".into(),
            blocks: vec![BlockSpec::default()],
            inner_iter_insts: 1_000,
            drift: 0.4,
            noise: 0.3,
            perf_drift: 0.05,
        }
    }
}

impl PhaseSpec {
    /// Check the phase and all its blocks.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.blocks.is_empty() {
            return Err(format!("phase `{}` has no blocks", self.name));
        }
        if self.inner_iter_insts < 50 {
            return Err(format!(
                "phase `{}` inner_iter_insts {} too small (min 50)",
                self.name, self.inner_iter_insts
            ));
        }
        if !(self.drift >= 0.0 && self.drift.is_finite()) {
            return Err(format!("phase `{}` drift must be non-negative", self.name));
        }
        if !(self.noise >= 0.0 && self.noise.is_finite()) {
            return Err(format!("phase `{}` noise must be non-negative", self.name));
        }
        if !(0.0..=1.0).contains(&self.perf_drift) {
            return Err(format!("phase `{}` perf_drift out of [0, 1]", self.name));
        }
        for (i, b) in self.blocks.iter().enumerate() {
            b.validate().map_err(|e| format!("phase `{}` block {i}: {e}", self.name))?;
        }
        Ok(())
    }
}

/// One outer-loop iteration in the script: which phase runs and roughly
/// how many instructions it executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptEntry {
    /// Phase to run.
    pub phase: PhaseId,
    /// Target size of the iteration in instructions.
    pub insts: u64,
}

impl ScriptEntry {
    /// Convenience constructor.
    pub fn new(phase: PhaseId, insts: u64) -> ScriptEntry {
        ScriptEntry { phase, insts }
    }
}

/// Full description of a synthetic benchmark.
///
/// # Example
///
/// ```
/// use mlpa_workloads::spec::{BenchmarkSpec, PhaseSpec, ScriptEntry};
///
/// let spec = BenchmarkSpec {
///     name: "toy".into(),
///     seed: 1,
///     phases: vec![PhaseSpec::default()],
///     script: vec![ScriptEntry::new(0, 50_000); 4],
///     ..BenchmarkSpec::default()
/// };
/// spec.validate().unwrap();
/// assert!(spec.nominal_insts() > 4 * 50_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkSpec {
    /// Benchmark name (SPEC2000-style).
    pub name: String,
    /// Master seed; all randomness derives from it.
    pub seed: u64,
    /// Instructions in the one-shot init section (its own small loop).
    pub init_insts: u64,
    /// Instructions in the one-shot tail section.
    pub tail_insts: u64,
    /// The phases.
    pub phases: Vec<PhaseSpec>,
    /// The outer-loop script (one entry per iteration).
    pub script: Vec<ScriptEntry>,
}

impl Default for BenchmarkSpec {
    fn default() -> Self {
        BenchmarkSpec {
            name: "bench".into(),
            seed: 0,
            init_insts: 2_000,
            tail_insts: 1_000,
            phases: vec![PhaseSpec::default()],
            script: vec![ScriptEntry::new(0, 100_000); 8],
        }
    }
}

impl BenchmarkSpec {
    /// Check the whole specification.
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated constraint, including
    /// script entries that reference non-existent phases.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("benchmark name must not be empty".into());
        }
        if self.phases.is_empty() {
            return Err("benchmark needs at least one phase".into());
        }
        if self.script.is_empty() {
            return Err("benchmark script needs at least one outer iteration".into());
        }
        for p in &self.phases {
            p.validate()?;
        }
        for (i, e) in self.script.iter().enumerate() {
            if e.phase >= self.phases.len() {
                return Err(format!(
                    "script entry {i} references phase {} but only {} phases exist",
                    e.phase,
                    self.phases.len()
                ));
            }
            if e.insts < self.phases[e.phase].inner_iter_insts {
                return Err(format!(
                    "script entry {i} size {} is smaller than one inner iteration ({})",
                    e.insts, self.phases[e.phase].inner_iter_insts
                ));
            }
        }
        Ok(())
    }

    /// Nominal total instruction count (init + script + tail); the
    /// generated trace lands close to (within a few block lengths per
    /// iteration of) this figure.
    pub fn nominal_insts(&self) -> u64 {
        self.init_insts + self.tail_insts + self.script.iter().map(|e| e.insts).sum::<u64>()
    }

    /// Number of outer-loop iterations.
    pub fn outer_iters(&self) -> usize {
        self.script.len()
    }

    /// Number of distinct phases actually referenced by the script.
    pub fn distinct_script_phases(&self) -> usize {
        let mut seen = vec![false; self.phases.len()];
        for e in &self.script {
            seen[e.phase] = true;
        }
        seen.into_iter().filter(|&s| s).count()
    }

    /// Scale the benchmark's dynamic length by `factor`, multiplying the
    /// script sizes and the init/tail sections while keeping the phase
    /// structure identical. Used to trade experiment fidelity for speed.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> BenchmarkSpec {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "scale factor must be positive and finite, got {factor}"
        );
        let mut s = self.clone();
        let scale_u64 = |v: u64| -> u64 { ((v as f64 * factor).round() as u64).max(1) };
        s.init_insts = scale_u64(s.init_insts);
        s.tail_insts = scale_u64(s.tail_insts);
        for e in &mut s.script {
            // Never shrink an iteration below one inner iteration.
            let min = self.phases[e.phase].inner_iter_insts;
            e.insts = scale_u64(e.insts).max(min);
        }
        s
    }

    /// Position (fraction of nominal instructions executed before it
    /// starts) of outer iteration `idx`. Useful for calibration tests
    /// against the paper's "position of last coarse point" facts.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.script.len()`.
    pub fn iteration_position(&self, idx: usize) -> f64 {
        assert!(idx < self.script.len(), "iteration index out of range");
        let before: u64 = self.init_insts + self.script[..idx].iter().map(|e| e.insts).sum::<u64>();
        before as f64 / self.nominal_insts() as f64
    }

    /// For each phase that appears in the script, the index of its first
    /// (earliest) outer iteration, in phase order.
    pub fn first_occurrences(&self) -> Vec<(PhaseId, usize)> {
        let mut firsts: Vec<(PhaseId, usize)> = Vec::new();
        for (i, e) in self.script.iter().enumerate() {
            if !firsts.iter().any(|&(p, _)| p == e.phase) {
                firsts.push((e.phase, i));
            }
        }
        firsts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_valid() {
        BenchmarkSpec::default().validate().unwrap();
    }

    #[test]
    fn script_phase_bounds_checked() {
        let mut s = BenchmarkSpec::default();
        s.script.push(ScriptEntry::new(5, 100_000));
        let err = s.validate().unwrap_err();
        assert!(err.contains("references phase 5"), "{err}");
    }

    #[test]
    fn too_small_iteration_rejected() {
        let mut s = BenchmarkSpec::default();
        s.script[0].insts = 10;
        assert!(s.validate().is_err());
    }

    #[test]
    fn nominal_insts_adds_up() {
        let s = BenchmarkSpec::default();
        assert_eq!(s.nominal_insts(), 2_000 + 1_000 + 8 * 100_000);
    }

    #[test]
    fn scaling_preserves_structure() {
        let s = BenchmarkSpec::default();
        let big = s.scaled(3.0);
        assert_eq!(big.outer_iters(), s.outer_iters());
        assert_eq!(big.phases, s.phases);
        assert!((big.nominal_insts() as f64 / s.nominal_insts() as f64 - 3.0).abs() < 0.01);
        big.validate().unwrap();
    }

    #[test]
    fn scaling_down_respects_inner_iteration_floor() {
        let s = BenchmarkSpec::default();
        let tiny = s.scaled(0.001);
        tiny.validate().unwrap();
        for e in &tiny.script {
            assert!(e.insts >= s.phases[e.phase].inner_iter_insts);
        }
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_scale_panics() {
        let _ = BenchmarkSpec::default().scaled(0.0);
    }

    #[test]
    fn positions_and_first_occurrences() {
        let mut s = BenchmarkSpec::default();
        s.phases.push(PhaseSpec { name: "p2".into(), ..PhaseSpec::default() });
        s.script = vec![
            ScriptEntry::new(0, 100_000),
            ScriptEntry::new(1, 100_000),
            ScriptEntry::new(0, 100_000),
        ];
        s.validate().unwrap();
        assert_eq!(s.first_occurrences(), vec![(0, 0), (1, 1)]);
        assert_eq!(s.distinct_script_phases(), 2);
        assert!(s.iteration_position(0) < 0.01);
        let p1 = s.iteration_position(1);
        assert!((0.3..0.4).contains(&p1), "{p1}");
    }

    #[test]
    fn block_spec_validation_catches_bad_params() {
        let ok = BlockSpec::default();
        ok.validate().unwrap();
        assert!(BlockSpec { len: 2, ..ok.clone() }.validate().is_err());
        assert!(BlockSpec { weight: 0.0, ..ok.clone() }.validate().is_err());
        assert!(BlockSpec { drift_dir: 2.0, ..ok.clone() }.validate().is_err());
        assert!(BlockSpec { dep_density: 1.5, ..ok }.validate().is_err());
    }

    #[test]
    fn phase_validation_catches_bad_params() {
        let ok = PhaseSpec::default();
        ok.validate().unwrap();
        assert!(PhaseSpec { blocks: vec![], ..ok.clone() }.validate().is_err());
        assert!(PhaseSpec { inner_iter_insts: 10, ..ok.clone() }.validate().is_err());
        assert!(PhaseSpec { perf_drift: 2.0, ..ok }.validate().is_err());
    }
}
