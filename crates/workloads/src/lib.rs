#![warn(missing_docs)]

//! Synthetic SPEC2000-like benchmark suite for the `mlpa`
//! sampling-simulation study.
//!
//! SPEC2000 binaries and reference inputs cannot ship with a
//! reproduction, so this crate builds the closest synthetic equivalent:
//! 26 benchmarks, named after the SPEC2000 suite, whose *phase
//! structure* is calibrated to every per-benchmark fact the DATE 2013
//! paper reports (iteration counts, coarse-phase counts, positions of
//! phase first-occurrences, gcc's wildly irregular outer loop, lucas's
//! smooth-coarse/chaotic-fine profile, …).
//!
//! The pipeline is:
//!
//! 1. describe a benchmark declaratively with a [`spec::BenchmarkSpec`]
//!    (phases → block families → behaviour patterns, plus the outer-loop
//!    script);
//! 2. compile it with [`CompiledBenchmark::compile`] into a static
//!    [`Program`](mlpa_isa::Program) and instruction templates;
//! 3. stream the dynamic trace with [`WorkloadStream`], an
//!    [`InstructionStream`](mlpa_isa::InstructionStream) any simulator
//!    or profiler can consume.
//!
//! # Example
//!
//! ```
//! use mlpa_isa::stream::drain_count;
//! use mlpa_workloads::{suite, CompiledBenchmark, WorkloadStream};
//!
//! // A scaled-down `lucas` for quick experimentation.
//! let spec = suite::benchmark("lucas").unwrap().scaled(0.01);
//! let cb = CompiledBenchmark::compile(&spec)?;
//! let stats = drain_count(WorkloadStream::new(&cb));
//! assert!(stats.instructions > 0);
//! # Ok::<(), String>(())
//! ```

pub mod behavior;
pub mod build;
pub mod generator;
pub mod spec;
pub mod suite;

pub use build::CompiledBenchmark;
pub use generator::WorkloadStream;
pub use spec::{BenchmarkSpec, BlockSpec, PhaseSpec, ScriptEntry};
pub use suite::Suite;
