//! Compilation of a [`BenchmarkSpec`] into a static [`Program`] plus the
//! per-block instruction templates the generator patches at run time.
//!
//! Layout (addresses increase top to bottom):
//!
//! ```text
//! B0   H_outer                      outer-loop header (lowest address)
//!      per phase p:
//!        H_p                        inner-loop header
//!        per family b: head_b, alt_b, cont_b
//!      H_init + init family blocks  one-shot init loop
//!      H_tail + tail family blocks  one-shot tail loop
//! ```
//!
//! Headers precede their loop bodies, so every loop back edge is a
//! *backward* branch in the layout — the invariant the dynamic loop
//! detector relies on.

use crate::behavior::{BranchPattern, InstMix, MemoryPattern};
use crate::spec::{BenchmarkSpec, BlockSpec, PhaseSpec};
use mlpa_isa::rng::SplitMix64;
use mlpa_isa::{BlockId, BranchKind, Instruction, OpClass, Program, ProgramBuilder, Reg};

/// Base of the synthetic data segment; families are spaced far enough
/// apart that even 16 MiB working sets never overlap.
const DATA_BASE: u64 = 0x1000_0000;
/// 32 MiB + 96 KiB. The 96 KiB stagger keeps region bases from aliasing
/// into the same cache-set window: a Table I L2 (1 MiB, 4-way, 32 B)
/// indexes on a 256 KiB address window, so power-of-two-spaced regions
/// would all compete for the same quarter of the sets and a nominally
/// L2-resident footprint would thrash on conflicts.
const FAMILY_SPACING: u64 = 0x0201_8000;

/// A static block's instruction template. The terminator (last slot) and
/// all memory-operand addresses are patched per dynamic instance.
#[derive(Debug, Clone)]
pub struct Template {
    /// Instructions, terminator included as the final slot.
    pub insts: Vec<Instruction>,
    /// Indices of load/store instructions needing address patching.
    pub mem_slots: Vec<u32>,
}

/// Compiled form of one block family (`head` / `alt` / `cont` triple).
#[derive(Debug, Clone)]
pub struct FamilyRt {
    /// Index of the originating [`BlockSpec`] within its phase.
    pub spec_idx: usize,
    /// The pattern-branch block.
    pub head: BlockId,
    /// The conditionally-skipped block.
    pub alt: BlockId,
    /// The self-repeat block.
    pub cont: BlockId,
    /// Mean repetitions per inner iteration at nominal weight.
    pub base_reps: f64,
    /// Base address of this family's data region.
    pub data_base: u64,
    /// Memory pattern (copied from the spec so the generator needs no
    /// spec lookups).
    pub mem: MemoryPattern,
    /// Branch pattern of the head block's conditional.
    pub branch: BranchPattern,
    /// Drift direction of this family's weight.
    pub drift_dir: f64,
}

/// Compiled form of one phase.
#[derive(Debug, Clone)]
pub struct PhaseRt {
    /// Inner-loop header block.
    pub header: BlockId,
    /// The phase's families in skeleton order.
    pub families: Vec<FamilyRt>,
    /// Expected instructions per inner iteration at nominal weights.
    pub expected_inner: f64,
    /// Weight-drift strength (copied from the spec).
    pub drift: f64,
    /// Weight-jitter σ (copied from the spec).
    pub noise: f64,
    /// Performance-drift fraction (copied from the spec).
    pub perf_drift: f64,
}

/// A fully compiled benchmark: static program, templates, and the
/// runtime structure the generator walks.
///
/// # Example
///
/// ```
/// use mlpa_workloads::spec::BenchmarkSpec;
/// use mlpa_workloads::build::CompiledBenchmark;
///
/// let cb = CompiledBenchmark::compile(&BenchmarkSpec::default()).unwrap();
/// assert!(cb.program().num_blocks() > 4);
/// ```
#[derive(Debug, Clone)]
pub struct CompiledBenchmark {
    spec: BenchmarkSpec,
    program: Program,
    templates: Vec<Template>,
    outer_header: BlockId,
    phases: Vec<PhaseRt>,
    /// Init section compiled as a one-shot mini phase (plus its
    /// iteration count).
    init: PhaseRt,
    init_iters: u64,
    tail: PhaseRt,
    tail_iters: u64,
}

impl CompiledBenchmark {
    /// Compile a specification.
    ///
    /// # Errors
    ///
    /// Returns the specification's own validation error, if any.
    pub fn compile(spec: &BenchmarkSpec) -> Result<CompiledBenchmark, String> {
        spec.validate()?;
        let mut c = Compiler::new(spec);
        Ok(c.run())
    }

    /// The originating specification.
    pub fn spec(&self) -> &BenchmarkSpec {
        &self.spec
    }

    /// The static program (block table / layout).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Template for a block.
    pub(crate) fn template(&self, id: BlockId) -> &Template {
        &self.templates[id.index()]
    }

    /// The outer-loop header block (`B0`).
    pub fn outer_header(&self) -> BlockId {
        self.outer_header
    }

    /// Compiled phases, indexed by [`PhaseId`](crate::spec::PhaseId).
    pub fn phases(&self) -> &[PhaseRt] {
        &self.phases
    }

    pub(crate) fn init(&self) -> (&PhaseRt, u64) {
        (&self.init, self.init_iters)
    }

    pub(crate) fn tail(&self) -> (&PhaseRt, u64) {
        (&self.tail, self.tail_iters)
    }
}

/// Split a family's `len` into head/alt/cont body lengths (terminators
/// not included).
fn split_len(len: u32) -> (u32, u32, u32) {
    let head = (len * 2 / 5).max(1);
    let alt = (len / 5).max(1);
    let cont = (len - head - alt).max(1);
    (head, alt, cont)
}

struct Compiler<'a> {
    spec: &'a BenchmarkSpec,
    builder: ProgramBuilder,
    templates: Vec<Template>,
    rng: SplitMix64,
    fam_counter: u64,
}

impl<'a> Compiler<'a> {
    fn new(spec: &'a BenchmarkSpec) -> Compiler<'a> {
        Compiler {
            spec,
            builder: ProgramBuilder::new(spec.name.clone()),
            templates: Vec::new(),
            rng: SplitMix64::new(spec.seed).fork(0xC0DE),
            fam_counter: 0,
        }
    }

    fn run(&mut self) -> CompiledBenchmark {
        let outer_header = self.add_header();
        let phases: Vec<PhaseRt> = self.spec.phases.iter().map(|p| self.compile_phase(p)).collect();

        let init_phase = init_touch_phase(self.spec);
        let init = self.compile_phase(&init_phase);
        let init_iters =
            (self.spec.init_insts as f64 / init.expected_inner).round().max(1.0) as u64;
        let tail_phase = section_phase("tail");
        let tail = self.compile_phase(&tail_phase);
        let tail_iters =
            (self.spec.tail_insts as f64 / tail.expected_inner).round().max(1.0) as u64;

        let program = std::mem::take(&mut self.builder).finish();
        CompiledBenchmark {
            spec: self.spec.clone(),
            program,
            templates: std::mem::take(&mut self.templates),
            outer_header,
            phases,
            init,
            init_iters,
            tail,
            tail_iters,
        }
    }

    /// A small 3-instruction loop-header block.
    fn add_header(&mut self) -> BlockId {
        let r = Reg::int(1);
        let insts = vec![
            Instruction::alu(OpClass::IntAlu, r, [r, Reg::int(2)]),
            Instruction::alu(OpClass::IntAlu, Reg::int(3), [r, r]),
            Instruction::branch(BranchKind::Conditional, r, false, BlockId::new(0)),
        ];
        let id = self.builder.add_block(insts.len() as u32);
        self.templates.push(Template { insts, mem_slots: Vec::new() });
        id
    }

    fn compile_phase(&mut self, p: &PhaseSpec) -> PhaseRt {
        let header = self.add_header();
        let header_len = f64::from(self.templates[header.index()].insts.len() as u32);

        // Weighted split of the inner-iteration budget across families.
        let body_budget = (p.inner_iter_insts as f64 - header_len).max(1.0);
        let weighted_len: f64 = p
            .blocks
            .iter()
            .map(|b| {
                // Expected dynamic length of one repetition: head + cont
                // always, alt with the pattern's fall-through rate.
                b.weight * expected_rep_len(b)
            })
            .sum();
        let scale = body_budget / weighted_len;

        let families = p
            .blocks
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let fam = self.compile_family(i, b);
                FamilyRt { base_reps: (b.weight * scale).max(0.05), ..fam }
            })
            .collect::<Vec<_>>();

        let expected_inner = header_len
            + families
                .iter()
                .zip(&p.blocks)
                .map(|(f, b)| f.base_reps * expected_rep_len(b))
                .sum::<f64>();

        PhaseRt {
            header,
            families,
            expected_inner,
            drift: p.drift,
            noise: p.noise,
            perf_drift: p.perf_drift,
        }
    }

    fn compile_family(&mut self, spec_idx: usize, b: &BlockSpec) -> FamilyRt {
        let (hl, al, cl) = split_len(b.len);
        let mut rng = self.rng.fork(self.fam_counter);
        // Families at the same position share a data region *across
        // phases*: real programs reuse their heap, so a phase switch
        // re-warms the L1 but finds the L2 still useful. (Giving every
        // family a private region would make each phase transition a
        // full cold restart of the hierarchy — a multi-megabyte ramp
        // that real workloads do not exhibit at every outer iteration.)
        let data_base = DATA_BASE + spec_idx as u64 * FAMILY_SPACING;
        self.fam_counter += 1;

        let head = self.add_body_block(hl, b, &mut rng);
        let alt = self.add_body_block(al, b, &mut rng);
        let cont = self.add_body_block(cl, b, &mut rng);
        FamilyRt {
            spec_idx,
            head,
            alt,
            cont,
            base_reps: 0.0,
            data_base,
            mem: b.mem,
            branch: b.branch,
            drift_dir: b.drift_dir,
        }
    }

    /// Build one body block of `body_len` instructions plus a terminator.
    fn add_body_block(&mut self, body_len: u32, b: &BlockSpec, rng: &mut SplitMix64) -> BlockId {
        let mut insts = Vec::with_capacity(body_len as usize + 1);
        let mut mem_slots = Vec::new();
        // Rolling window of recently produced registers for dependences.
        let mut recent: [Reg; 4] = [Reg::int(1); 4];
        let mut next_int = 8u8;
        let mut next_fp = 8u8;
        let chase = b.mem.is_dependent();
        // Dedicated chain register for pointer-chase loads.
        let chain = Reg::int(24);

        for i in 0..body_len {
            let op = draw_op(&b.mix, rng);
            let pick_src = |rng: &mut SplitMix64, recent: &[Reg; 4]| -> Reg {
                if rng.chance(b.dep_density) {
                    recent[rng.range_usize(4)]
                } else {
                    Reg::int(1 + rng.range_usize(6) as u8)
                }
            };
            let inst = match op {
                OpClass::Load => {
                    mem_slots.push(i);
                    if chase {
                        Instruction::load(chain, chain, 0)
                    } else {
                        let dst = Reg::int(next_int);
                        next_int = 8 + (next_int - 8 + 1) % 16;
                        let l = Instruction::load(dst, Reg::int(2), 0);
                        recent.rotate_left(1);
                        recent[3] = dst;
                        l
                    }
                }
                OpClass::Store => {
                    mem_slots.push(i);
                    Instruction::store(pick_src(rng, &recent), Reg::int(2), 0)
                }
                op if op.is_fp() => {
                    let dst = Reg::fp(next_fp);
                    next_fp = 8 + (next_fp - 8 + 1) % 16;
                    let s0 = pick_src(rng, &recent);
                    let i = Instruction::alu(op, dst, [s0, Reg::fp(1 + rng.range_usize(6) as u8)]);
                    recent.rotate_left(1);
                    recent[3] = dst;
                    i
                }
                op => {
                    let dst = Reg::int(next_int);
                    next_int = 8 + (next_int - 8 + 1) % 16;
                    let s0 = pick_src(rng, &recent);
                    let s1 = pick_src(rng, &recent);
                    let i = Instruction::alu(op, dst, [s0, s1]);
                    recent.rotate_left(1);
                    recent[3] = dst;
                    i
                }
            };
            insts.push(inst);
        }
        // Terminator placeholder; patched per dynamic instance.
        insts.push(Instruction::branch(BranchKind::Conditional, recent[3], false, BlockId::new(0)));

        let id = self.builder.add_block(insts.len() as u32);
        self.templates.push(Template { insts, mem_slots });
        id
    }
}

/// Expected dynamic instructions of one repetition of a family,
/// including terminators and the alt block at its fall-through rate.
pub(crate) fn expected_rep_len(b: &BlockSpec) -> f64 {
    let (hl, al, cl) = split_len(b.len);
    let p_alt = 1.0 - taken_rate(&b.branch);
    f64::from(hl + 1) + p_alt * f64::from(al + 1) + f64::from(cl + 1)
}

/// Long-run taken rate of a branch pattern.
fn taken_rate(p: &BranchPattern) -> f64 {
    match *p {
        BranchPattern::Biased { p_taken } => p_taken,
        BranchPattern::Periodic { taken, not_taken } => {
            f64::from(taken) / f64::from(u32::from(taken) + u32::from(not_taken)).max(1.0)
        }
    }
}

/// Draw an op class from a mix.
fn draw_op(mix: &InstMix, rng: &mut SplitMix64) -> OpClass {
    let x = rng.next_f64();
    let mut acc = mix.load;
    if x < acc {
        return OpClass::Load;
    }
    acc += mix.store;
    if x < acc {
        return OpClass::Store;
    }
    acc += mix.fp_add;
    if x < acc {
        return OpClass::FpAdd;
    }
    acc += mix.fp_mul;
    if x < acc {
        return OpClass::FpMul;
    }
    acc += mix.fp_div;
    if x < acc {
        return OpClass::FpDiv;
    }
    acc += mix.int_mul;
    if x < acc {
        return OpClass::IntMul;
    }
    acc += mix.int_div;
    if x < acc {
        return OpClass::IntDiv;
    }
    OpClass::IntAlu
}

/// The auto-generated mini phase used for the tail section: one bland
/// L1-resident family, no drift.
fn section_phase(name: &str) -> PhaseSpec {
    PhaseSpec {
        name: name.into(),
        blocks: vec![BlockSpec {
            len: 18,
            weight: 1.0,
            drift_dir: 0.0,
            mix: InstMix { load: 0.2, store: 0.1, ..InstMix::default() },
            mem: MemoryPattern::Strided { stride: 8, working_set: 4 * 1024 },
            branch: BranchPattern::Biased { p_taken: 0.05 },
            dep_density: 0.3,
        }],
        inner_iter_insts: 120,
        drift: 0.0,
        noise: 0.05,
        perf_drift: 0.0,
    }
}

/// The init section *initialises the program's data*: it streams
/// line-granular stores through the data regions the phases will use,
/// the way real programs read inputs and build their data structures
/// before entering the main loop. Without this, the first-ever
/// iteration of every phase would pay the entire compulsory-miss ramp
/// of its working set — a cost that real reference-input runs amortise
/// over runs 1000× longer, and which would otherwise systematically
/// contaminate the *earliest instances* COASTS selects.
///
/// The touch volume is bounded by the spec's `init_insts` budget: each
/// region slot gets a share of the touchable bytes proportional to its
/// largest working set across phases.
fn init_touch_phase(spec: &BenchmarkSpec) -> PhaseSpec {
    let slots = spec.phases.iter().map(|p| p.blocks.len()).max().unwrap_or(1);
    let slot_ws: Vec<u64> = (0..slots)
        .map(|k| {
            spec.phases
                .iter()
                .filter_map(|p| p.blocks.get(k))
                .map(|b| b.mem.working_set())
                .max()
                .unwrap_or(4 * 1024)
        })
        .collect();
    let total_ws: u64 = slot_ws.iter().sum::<u64>().max(1);
    // Touchable bytes: roughly half the init instructions are memory
    // ops, each advancing one 32-byte line.
    let touch_bytes = spec.init_insts / 2 * 32;

    let blocks = slot_ws
        .iter()
        .map(|&ws| {
            let share = (touch_bytes as f64 * ws as f64 / total_ws as f64) as u64;
            BlockSpec {
                len: 16,
                weight: (ws as f64 / total_ws as f64).max(0.02),
                drift_dir: 0.0,
                mix: InstMix { load: 0.25, store: 0.25, ..InstMix::default() },
                mem: MemoryPattern::Strided { stride: 32, working_set: share.min(ws).max(64) },
                branch: BranchPattern::Biased { p_taken: 0.05 },
                dep_density: 0.2,
            }
        })
        .collect();

    PhaseSpec {
        name: "init".into(),
        blocks,
        inner_iter_insts: 400,
        drift: 0.0,
        noise: 0.05,
        perf_drift: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScriptEntry;

    #[test]
    fn compiles_default_spec() {
        let cb = CompiledBenchmark::compile(&BenchmarkSpec::default()).unwrap();
        assert_eq!(cb.outer_header(), BlockId::new(0));
        assert_eq!(cb.phases().len(), 1);
        // header + (header + 3 blocks per family) per phase + init + tail.
        assert!(cb.program().num_blocks() >= 1 + 4 + 4 + 4);
    }

    #[test]
    fn invalid_spec_is_rejected() {
        let mut s = BenchmarkSpec::default();
        s.script.clear();
        assert!(CompiledBenchmark::compile(&s).is_err());
    }

    #[test]
    fn headers_precede_their_bodies() {
        let cb = CompiledBenchmark::compile(&BenchmarkSpec::default()).unwrap();
        let p = &cb.phases()[0];
        for f in &p.families {
            assert!(p.header < f.head);
            assert!(f.head < f.alt && f.alt < f.cont);
            assert!(cb.program().is_backward(f.cont, f.head));
            assert!(cb.program().is_backward(f.cont, p.header));
            assert!(cb.program().is_backward(f.cont, cb.outer_header()));
        }
    }

    #[test]
    fn templates_match_block_lengths() {
        let cb = CompiledBenchmark::compile(&BenchmarkSpec::default()).unwrap();
        for b in cb.program().blocks() {
            let t = cb.template(b.id);
            assert_eq!(t.insts.len() as u32, b.len, "template/block len mismatch at {}", b.id);
            // Terminator is a branch.
            assert!(t.insts.last().unwrap().is_branch());
            for &slot in &t.mem_slots {
                assert!(t.insts[slot as usize].is_mem());
            }
        }
    }

    #[test]
    fn family_regions_do_not_overlap() {
        let mut s = BenchmarkSpec::default();
        s.phases[0].blocks.push(BlockSpec {
            mem: MemoryPattern::RandomInSet { working_set: 16 << 20 },
            ..BlockSpec::default()
        });
        let cb = CompiledBenchmark::compile(&s).unwrap();
        let fams = &cb.phases()[0].families;
        for w in fams.windows(2) {
            assert!(w[1].data_base - w[0].data_base >= (16 << 20) as u64 * 2);
        }
    }

    #[test]
    fn expected_inner_size_tracks_request() {
        let mut s = BenchmarkSpec::default();
        s.phases[0].inner_iter_insts = 2_000;
        s.script = vec![ScriptEntry::new(0, 100_000); 4];
        let cb = CompiledBenchmark::compile(&s).unwrap();
        let e = cb.phases()[0].expected_inner;
        assert!(
            (e - 2_000.0).abs() / 2_000.0 < 0.25,
            "expected inner {e} too far from requested 2000"
        );
    }

    #[test]
    fn compilation_is_deterministic() {
        let a = CompiledBenchmark::compile(&BenchmarkSpec::default()).unwrap();
        let b = CompiledBenchmark::compile(&BenchmarkSpec::default()).unwrap();
        assert_eq!(a.program(), b.program());
        for blk in a.program().blocks() {
            assert_eq!(a.template(blk.id).insts, b.template(blk.id).insts);
        }
    }

    #[test]
    fn section_iters_scale_with_requested_size() {
        let s = BenchmarkSpec { init_insts: 10_000, ..BenchmarkSpec::default() };
        let cb = CompiledBenchmark::compile(&s).unwrap();
        let (init, iters) = cb.init();
        let total = iters as f64 * init.expected_inner;
        assert!((total - 10_000.0).abs() / 10_000.0 < 0.2, "init total {total}");
    }
}
