//! Statistical validation of generated traces: the dynamic instruction
//! stream must actually exhibit the behaviour its spec declares —
//! instruction mixes, branch-direction rates, memory footprints, and
//! phase scheduling.

use mlpa_isa::stream::InstructionStream;
use mlpa_isa::{BlockId, OpClass};
use mlpa_workloads::behavior::{BranchPattern, InstMix, MemoryPattern};
use mlpa_workloads::spec::{BenchmarkSpec, BlockSpec, PhaseSpec, ScriptEntry};
use mlpa_workloads::{CompiledBenchmark, WorkloadStream};
use std::collections::HashMap;

/// Gather per-class instruction counts and address stats from a trace.
struct TraceStats {
    per_class: [u64; 10],
    total: u64,
    distinct_lines: std::collections::HashSet<u64>,
    taken: u64,
    branches: u64,
    block_counts: HashMap<BlockId, u64>,
}

fn collect(cb: &CompiledBenchmark) -> TraceStats {
    let mut s = TraceStats {
        per_class: [0; 10],
        total: 0,
        distinct_lines: Default::default(),
        taken: 0,
        branches: 0,
        block_counts: HashMap::new(),
    };
    let mut stream = WorkloadStream::new(cb);
    let mut buf = Vec::new();
    while let Some(id) = stream.next_block(&mut buf) {
        *s.block_counts.entry(id).or_insert(0) += buf.len() as u64;
        for i in &buf {
            s.per_class[i.op.index()] += 1;
            s.total += 1;
            if i.is_mem() {
                s.distinct_lines.insert(i.addr >> 5);
            }
            if let Some(b) = &i.branch {
                s.branches += 1;
                s.taken += u64::from(b.taken);
            }
        }
    }
    s
}

fn single_phase_spec(block: BlockSpec) -> BenchmarkSpec {
    BenchmarkSpec {
        name: "stats".into(),
        seed: 11,
        init_insts: 500,
        tail_insts: 200,
        phases: vec![PhaseSpec {
            name: "p".into(),
            blocks: vec![block],
            inner_iter_insts: 800,
            drift: 0.0,
            noise: 0.1,
            perf_drift: 0.0,
        }],
        script: vec![ScriptEntry::new(0, 80_000); 4],
    }
}

#[test]
fn instruction_mix_tracks_spec() {
    let mix = InstMix { load: 0.30, store: 0.10, fp_add: 0.15, ..InstMix::default() };
    let spec = single_phase_spec(BlockSpec { mix, len: 30, ..BlockSpec::default() });
    let cb = CompiledBenchmark::compile(&spec).unwrap();
    let s = collect(&cb);
    let frac = |c: OpClass| s.per_class[c.index()] as f64 / s.total as f64;
    // Terminators and headers dilute the body mix; allow generous slack
    // but require the right ordering and magnitude.
    assert!(
        (0.18..0.35).contains(&frac(OpClass::Load)),
        "load fraction {:.3}",
        frac(OpClass::Load)
    );
    assert!(
        (0.05..0.14).contains(&frac(OpClass::Store)),
        "store fraction {:.3}",
        frac(OpClass::Store)
    );
    assert!(
        (0.08..0.20).contains(&frac(OpClass::FpAdd)),
        "fp_add fraction {:.3}",
        frac(OpClass::FpAdd)
    );
    assert!(frac(OpClass::IntAlu) > 0.2, "alu fills the remainder");
}

#[test]
fn working_set_bounds_distinct_lines() {
    let ws = 32 * 1024u64;
    let spec = single_phase_spec(BlockSpec {
        mem: MemoryPattern::RandomInSet { working_set: ws },
        mix: InstMix { load: 0.4, store: 0.1, ..InstMix::default() },
        ..BlockSpec::default()
    });
    let cb = CompiledBenchmark::compile(&spec).unwrap();
    let s = collect(&cb);
    let body_lines = ws / 32;
    // Init touches the region too; allow init's extra region plus slack.
    assert!(
        (s.distinct_lines.len() as u64) < body_lines * 3,
        "{} distinct lines for a {} line working set",
        s.distinct_lines.len(),
        body_lines
    );
    assert!(
        (s.distinct_lines.len() as u64) > body_lines / 2,
        "random pattern should cover most of its set: {} of {}",
        s.distinct_lines.len(),
        body_lines
    );
}

#[test]
fn biased_branch_pattern_shapes_taken_rate() {
    // The head block's pattern branch flips per the bias; structural
    // branches (self-repeat, loop back-edges) add their own takens, so
    // compare two extremes rather than absolute values.
    let rate = |p_taken: f64| {
        let spec = single_phase_spec(BlockSpec {
            branch: BranchPattern::Biased { p_taken },
            ..BlockSpec::default()
        });
        let cb = CompiledBenchmark::compile(&spec).unwrap();
        let s = collect(&cb);
        s.taken as f64 / s.branches as f64
    };
    let low = rate(0.02);
    let high = rate(0.98);
    assert!(high > low + 0.1, "taken-heavy pattern {high:.3} must exceed not-taken-heavy {low:.3}");
}

#[test]
fn block_execution_follows_phase_schedule() {
    // Two phases alternating: blocks of phase 0 must accumulate roughly
    // the same instruction mass as phase 1 given equal script shares.
    let spec = BenchmarkSpec {
        phases: vec![
            PhaseSpec { name: "a".into(), ..PhaseSpec::default() },
            PhaseSpec { name: "b".into(), ..PhaseSpec::default() },
        ],
        script: (0..10).map(|i| ScriptEntry::new(i % 2, 60_000)).collect(),
        ..BenchmarkSpec::default()
    };
    let cb = CompiledBenchmark::compile(&spec).unwrap();
    let s = collect(&cb);
    let mass = |rt: &mlpa_workloads::build::PhaseRt| -> u64 {
        rt.families
            .iter()
            .flat_map(|f| [f.head, f.alt, f.cont])
            .chain([rt.header])
            .map(|b| s.block_counts.get(&b).copied().unwrap_or(0))
            .sum()
    };
    let m0 = mass(&cb.phases()[0]) as f64;
    let m1 = mass(&cb.phases()[1]) as f64;
    assert!(
        (m0 / m1 - 1.0).abs() < 0.25,
        "equal script shares should yield similar masses: {m0} vs {m1}"
    );
}

#[test]
fn pointer_chase_wires_dependent_loads() {
    let spec = single_phase_spec(BlockSpec {
        mem: MemoryPattern::PointerChase { working_set: 1 << 20 },
        mix: InstMix { load: 0.4, store: 0.05, ..InstMix::default() },
        ..BlockSpec::default()
    });
    let cb = CompiledBenchmark::compile(&spec).unwrap();
    let mut stream = WorkloadStream::new(&cb);
    let mut buf = Vec::new();
    let mut chained = 0u64;
    let mut loads = 0u64;
    // Skip past init (its blocks are not chase blocks).
    for _ in 0..200 {
        let _ = stream.next_block(&mut buf);
    }
    for _ in 0..2_000 {
        if stream.next_block(&mut buf).is_none() {
            break;
        }
        for i in &buf {
            if i.op == OpClass::Load {
                loads += 1;
                if i.dst == i.srcs[0] && i.dst.is_some() {
                    chained += 1;
                }
            }
        }
    }
    assert!(loads > 100, "need loads to inspect, got {loads}");
    assert!(
        chained as f64 / loads as f64 > 0.5,
        "pointer-chase loads should form dst==src chains: {chained}/{loads}"
    );
}

#[test]
fn scaling_preserves_mix_and_footprint_character() {
    let spec = mlpa_workloads::suite::benchmark_with_iters("mcf", 1).unwrap();
    let small = CompiledBenchmark::compile(&spec.scaled(0.05)).unwrap();
    let s = collect(&small);
    // mcf is integer: no FP operations at any scale.
    assert_eq!(s.per_class[OpClass::FpAdd.index()], 0);
    assert_eq!(s.per_class[OpClass::FpMul.index()], 0);
    // Loads present in force (pointer-chasing benchmark).
    assert!(s.per_class[OpClass::Load.index()] as f64 / s.total as f64 > 0.15);
}
