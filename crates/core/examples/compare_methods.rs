//! Compare all three sampling methods on named benchmarks: plan shape,
//! accuracy against ground truth, and modelled speedup.
//!
//! ```text
//! cargo run --release -p mlpa-core --example compare_methods \
//!     [--quiet|--verbose] [bench...]
//! ```
//!
//! Tables go to stdout; progress goes to stderr through the `mlpa-obs`
//! logger (`--quiet` silences it, `--verbose` adds per-step detail).

use mlpa_core::prelude::*;
use mlpa_obs::{info, vlog};
use mlpa_sim::MachineConfig;
use mlpa_workloads::{suite, CompiledBenchmark};

fn main() -> Result<(), String> {
    let mut names: Vec<String> = Vec::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--quiet" => mlpa_obs::set_verbosity(mlpa_obs::Verbosity::Quiet),
            "--verbose" => mlpa_obs::set_verbosity(mlpa_obs::Verbosity::Verbose),
            other if !other.starts_with('-') => names.push(other.to_owned()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    if names.is_empty() {
        names = vec!["gzip".into(), "lucas".into(), "gcc".into()];
    }
    let cfg = MachineConfig::table1_base();
    let model = CostModel::paper_implied();
    for name in &names {
        let spec = suite::benchmark(name).ok_or_else(|| format!("unknown benchmark {name}"))?;
        info!("compare", "running {name}...");
        let cb = CompiledBenchmark::compile(&spec)?;
        let t0 = std::time::Instant::now();
        let truth = ground_truth(&cb, &cfg).estimate();
        vlog!("compare", "{name}: ground truth done in {:.1}s", t0.elapsed().as_secs_f64());
        let fine = simpoint_baseline(
            &cb,
            FINE_INTERVAL,
            &SimPointConfig::fine_10m(),
            &ProjectionSettings::default(),
        )?;
        vlog!("compare", "{name}: fine baseline selected {} points", fine.plan.len());
        let co = coasts(&cb, &CoastsConfig::default())?;
        let ml = multilevel(&cb, &MultilevelConfig::default())?;
        vlog!("compare", "{name}: COASTS {} pts, multi-level {} pts", co.plan.len(), ml.plan.len());
        println!(
            "=== {name} ({:.0}M inst; {:.0}s) truth CPI {:.3}",
            fine.plan.total_insts() as f64 / 1e6,
            t0.elapsed().as_secs_f64(),
            truth.cpi
        );
        for (label, plan) in
            [("SimPoint", &fine.plan), ("COASTS  ", &co.plan), ("Multi   ", &ml.plan)]
        {
            let est = execute_plan(&cb, &cfg, plan, WarmupMode::Warmed).estimate;
            let d = est.deviation_from(&truth);
            println!(
                "  {label}: {:3} pts, detail {:.3}%, func {:.2}%, last {:.1}%, \
                 dCPI {:.2}% dL1 {:.2}% dL2 {:.2}%, speedup {:.2}x",
                plan.len(),
                plan.detail_fraction() * 100.0,
                plan.functional_fraction() * 100.0,
                plan.last_position() * 100.0,
                d.cpi * 100.0,
                d.l1_hit_rate * 100.0,
                d.l2_hit_rate * 100.0,
                model.speedup(&fine.plan, plan)
            );
        }
    }
    Ok(())
}
