//! Context-level sharding integration: `ProfilingContext` with
//! `set_shards(N)` must produce **bit-identical** profiles, selections,
//! and estimates to the monolithic single-thread pass, and per-shard
//! artifacts in the cache must let a killed run resume without
//! re-profiling completed segments.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use mlpa_core::artifact::ProfileShardArtifact;
use mlpa_core::cache::{ArtifactCache, CacheKey};
use mlpa_core::pipeline::{ProfilingContext, ProjectionSettings, ShardDriver, FINE_INTERVAL};
use mlpa_core::prelude::*;
use mlpa_phase::interval::Interval;
use mlpa_phase::loops::LoopProfile;
use mlpa_workloads::spec::{BenchmarkSpec, PhaseSpec, ScriptEntry};
use mlpa_workloads::CompiledBenchmark;

fn two_phase_cb() -> CompiledBenchmark {
    let spec = BenchmarkSpec {
        phases: vec![
            PhaseSpec { name: "a".into(), ..PhaseSpec::default() },
            PhaseSpec { name: "b".into(), ..PhaseSpec::default() },
        ],
        script: (0..8).map(|i| ScriptEntry::new(i % 2, 500_000)).collect(),
        ..BenchmarkSpec::default()
    };
    CompiledBenchmark::compile(&spec).unwrap()
}

fn tmp_root(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("mlpa-shard-profiling-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn profiles_with(
    cb: &CompiledBenchmark,
    shards: usize,
    driver: ShardDriver,
    cache: Option<Arc<ArtifactCache>>,
) -> (LoopProfile, Vec<Interval>, Vec<Interval>, bool) {
    let mut ctx = ProfilingContext::new(cb, ProjectionSettings::default(), FINE_INTERVAL);
    ctx.set_shards(shards);
    ctx.set_shard_driver(driver);
    if let Some(c) = cache {
        ctx.set_cache(c);
    }
    ctx.prepare();
    let profile = ctx.loop_profile().clone();
    let fine = ctx.fine_intervals().to_vec();
    let header = cb.outer_header();
    let (biv, prologue) = ctx.boundary_intervals(header);
    (profile, fine, biv.to_vec(), prologue)
}

#[test]
fn sharded_context_is_bit_identical_to_monolithic() {
    let cb = two_phase_cb();
    let mono = profiles_with(&cb, 1, ShardDriver::Auto, None);
    // Scheduling is a wall-clock knob only: every shard count under
    // every driver must reproduce the monolithic pass bit-for-bit.
    for driver in [ShardDriver::Chained, ShardDriver::Threaded] {
        for shards in [2, 3, 5, 8] {
            let sharded = profiles_with(&cb, shards, driver, None);
            assert_eq!(
                sharded, mono,
                "shards={shards} ({driver:?}) diverged from the monolithic pass"
            );
        }
    }
}

#[test]
fn sharded_context_flows_through_full_pipeline_identically() {
    let cb = two_phase_cb();
    let mcfg = MultilevelConfig::default();
    let run = |shards: usize| {
        let mut ctx = ProfilingContext::new(&cb, mcfg.coasts.projection, mcfg.fine_interval);
        ctx.set_shards(shards);
        ctx.prepare();
        let fine = simpoint_baseline_with(&mut ctx, &SimPointConfig::fine_10m()).unwrap();
        let co = coasts_with(&mut ctx, &mcfg.coasts).unwrap();
        let multi = multilevel_with(&mut ctx, &mcfg).unwrap();
        (fine, co, multi)
    };
    assert_eq!(run(8), run(1), "downstream selection must not see the shard count");
}

/// Reconstructs the private per-shard cache key (the key material is
/// the public contract pinned here; if this breaks, bump the cache
/// schema).
fn shard0_key(cb: &CompiledBenchmark, shards: usize) -> CacheKey {
    CacheKey::new()
        .field("spec", cb.spec())
        .field("projection", &ProjectionSettings::default())
        .field("interval", &FINE_INTERVAL)
        .field("shards", &shards)
        .field("shard", &0usize)
}

#[test]
fn shard_artifacts_resume_an_interrupted_run() {
    let cb = two_phase_cb();
    let shards = 4;
    let root = tmp_root("resume");
    let cache = Arc::new(ArtifactCache::open(&root).unwrap());

    // Cold run under the threaded driver; the resumed runs below use
    // the chained driver — per-shard artifacts are driver-agnostic.
    let pristine = profiles_with(&cb, shards, ShardDriver::Threaded, Some(cache.clone()));

    // The cold run deposited one artifact per shard.
    for kind in ["profile-shard", "boundary-shard"] {
        let n = fs::read_dir(root.join(kind)).unwrap().count();
        assert_eq!(n, shards, "expected {shards} {kind} artifacts");
    }

    // Simulate a crash after the shards completed but before the merge
    // landed: drop the merged artifacts, keep the per-shard ones.
    let drop_merged = || {
        for kind in ["loop-profile", "intervals", "boundary"] {
            let _ = fs::remove_dir_all(root.join(kind));
        }
    };

    // Prove the resumed run *consumes* the cached shards rather than
    // silently re-profiling: tamper with shard 0 (valid encoding, wrong
    // tallies) and observe the merge change.
    let key = shard0_key(&cb, shards);
    let original: ProfileShardArtifact = cache.get(&key).expect("shard 0 artifact");
    let mut tampered = original.clone();
    tampered.loops.total_insts += 1_000_000;
    cache.put(&key, &tampered);
    drop_merged();
    let poisoned = profiles_with(&cb, shards, ShardDriver::Chained, Some(cache.clone()));
    assert_ne!(poisoned.0, pristine.0, "resume must read the cached shard artifacts");

    // With the real artifact restored, resume reproduces the cold run
    // bit-for-bit.
    cache.put(&key, &original);
    drop_merged();
    let resumed = profiles_with(&cb, shards, ShardDriver::Chained, Some(cache.clone()));
    assert_eq!(resumed, pristine, "resumed run must match the uninterrupted one");

    let _ = fs::remove_dir_all(&root);
}
