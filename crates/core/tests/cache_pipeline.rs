//! End-to-end artifact-cache integration: a warm-cache pipeline run
//! must reproduce the cold run's outcomes bit-for-bit, config changes
//! must miss, and corrupted entries must be regenerated transparently.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use mlpa_core::cache::ArtifactCache;
use mlpa_core::prelude::*;
use mlpa_workloads::spec::{BenchmarkSpec, PhaseSpec, ScriptEntry};
use mlpa_workloads::CompiledBenchmark;

fn two_phase_cb() -> CompiledBenchmark {
    let spec = BenchmarkSpec {
        phases: vec![
            PhaseSpec { name: "a".into(), ..PhaseSpec::default() },
            PhaseSpec { name: "b".into(), ..PhaseSpec::default() },
        ],
        script: (0..8).map(|i| ScriptEntry::new(i % 2, 500_000)).collect(),
        ..BenchmarkSpec::default()
    };
    CompiledBenchmark::compile(&spec).unwrap()
}

fn tmp_root(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("mlpa-cache-pipeline-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn run_pipeline(
    cb: &CompiledBenchmark,
    cache: Option<Arc<ArtifactCache>>,
) -> (mlpa_core::FineOutcome, mlpa_core::CoastsOutcome, mlpa_core::MultilevelOutcome) {
    let mcfg = MultilevelConfig::default();
    let mut ctx = ProfilingContext::new(cb, mcfg.coasts.projection, mcfg.fine_interval);
    if let Some(c) = cache {
        ctx.set_cache(c);
    }
    ctx.prepare();
    let fine = simpoint_baseline_with(&mut ctx, &SimPointConfig::fine_10m()).unwrap();
    let co = coasts_with(&mut ctx, &mcfg.coasts).unwrap();
    let multi = multilevel_with(&mut ctx, &mcfg).unwrap();
    (fine, co, multi)
}

#[test]
fn warm_run_reproduces_cold_run_exactly() {
    let cb = two_phase_cb();
    let root = tmp_root("warm");
    let cache = Arc::new(ArtifactCache::open(&root).unwrap());

    let uncached = run_pipeline(&cb, None);
    let cold = run_pipeline(&cb, Some(cache.clone()));
    let warm = run_pipeline(&cb, Some(cache.clone()));

    assert_eq!(cold, uncached, "caching must not change results");
    assert_eq!(warm, cold, "warm run must be bit-identical to cold");

    // The store holds every artifact family the pipeline produced.
    let kinds: Vec<String> = fs::read_dir(&root)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    for expected in [
        "loop-profile",
        "intervals",
        "boundary",
        "fine-outcome",
        "coasts-outcome",
        "multilevel-outcome",
    ] {
        assert!(kinds.iter().any(|k| k == expected), "missing artifact kind {expected}: {kinds:?}");
    }

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn config_change_is_a_miss_not_a_wrong_hit() {
    let cb = two_phase_cb();
    let root = tmp_root("keys");
    let cache = Arc::new(ArtifactCache::open(&root).unwrap());

    let base = run_pipeline(&cb, Some(cache.clone()));

    // A different projection seed must re-profile, not reuse: its fine
    // selection differs from the cached one whenever clustering is
    // seed-sensitive, and crucially it must *never* return the old
    // projection's intervals. We assert on the interval vectors, which
    // are guaranteed to change with the projection matrix.
    let mcfg = MultilevelConfig::default();
    let other = ProjectionSettings { seed: 0xDEAD_BEEF, ..mcfg.coasts.projection };
    let mut ctx = ProfilingContext::new(&cb, other, mcfg.fine_interval);
    ctx.set_cache(cache.clone());
    ctx.prepare();
    let cfg2 = CoastsConfig { projection: other, ..mcfg.coasts };
    let co2 = coasts_with(&mut ctx, &cfg2).unwrap();
    assert_ne!(
        co2.intervals[0].vector, base.1.intervals[0].vector,
        "projection change must not reuse old interval signatures"
    );

    let _ = fs::remove_dir_all(&root);
}

#[test]
fn corrupted_entries_are_regenerated() {
    let cb = two_phase_cb();
    let root = tmp_root("corrupt");
    let cache = Arc::new(ArtifactCache::open(&root).unwrap());

    let cold = run_pipeline(&cb, Some(cache.clone()));

    // Corrupt every stored entry: flip a payload byte in one file per
    // kind, truncate the rest.
    let mut corrupted = 0usize;
    for kind in fs::read_dir(&root).unwrap() {
        for (i, entry) in fs::read_dir(kind.unwrap().path()).unwrap().enumerate() {
            let path = entry.unwrap().path();
            let mut bytes = fs::read(&path).unwrap();
            if i % 2 == 0 {
                let last = bytes.len() - 2;
                bytes[last] ^= 0x40;
                fs::write(&path, &bytes).unwrap();
            } else {
                fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
            }
            corrupted += 1;
        }
    }
    assert!(corrupted >= 6, "expected one entry per artifact family, saw {corrupted}");

    // Every lookup must reject its corrupt entry and recompute; the
    // results are again identical, and the store is repopulated with
    // verifiable entries for the next (clean) warm run.
    let regen = run_pipeline(&cb, Some(cache.clone()));
    assert_eq!(regen, cold, "regenerated results must match the cold run");
    let warm = run_pipeline(&cb, Some(cache.clone()));
    assert_eq!(warm, cold, "entries rewritten after corruption must verify");

    let _ = fs::remove_dir_all(&root);
}
