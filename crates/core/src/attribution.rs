//! Accuracy attribution: decompose a sampled estimate's error into
//! per-coarse-phase contributions.
//!
//! Table II reports one deviation number per benchmark; when it is
//! large the table cannot say *which* phase the sampler misjudged.
//! Attribution answers that by comparing, for every coarse phase `c`,
//!
//! * the **estimated** behaviour — the detailed metrics of the phase's
//!   selected representative point, and
//! * the **measured** behaviour — the ground-truth metrics of *all* the
//!   phase's iteration intervals, obtained from one segmented detailed
//!   pass ([`ground_truth_segmented`]) whose statistics telescope
//!   exactly to the whole-run truth,
//!
//! and weighting the difference by the phase's instruction-mass share.
//! The signed **error shares** then sum (up to the unclassified
//! prologue/epilogue remainder) to the whole-benchmark error:
//!
//! * CPI: `w_c * (est_c - meas_c) / truth_cpi` — relative, so the
//!   shares are directly comparable to the headline relative CPI error;
//! * hit rates: `w_c * (est_c - meas_c)` — absolute, matching how the
//!   paper reports cache deviations.
//!
//! A phase with a large share is *the* phase whose representative is
//! unrepresentative; a benchmark whose shares cancel is accurate by
//! luck, not by construction — both are invisible in the aggregate
//! deviation.

use crate::coasts::CoastsOutcome;
use crate::estimate::{ground_truth_segmented, ExecutionOutcome};
use mlpa_obs::json::Value;
use mlpa_sim::{MachineConfig, MetricEstimate, SimMetrics};
use mlpa_workloads::CompiledBenchmark;
use std::collections::BTreeMap;

/// One coarse phase's contribution to the benchmark's estimation error.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseAttribution {
    /// Cluster id of the phase.
    pub cluster: usize,
    /// Instruction-mass share of the classified intervals (the weight
    /// the estimate combined this phase with; weights sum to 1).
    pub weight: f64,
    /// Number of iteration intervals assigned to the phase.
    pub instances: usize,
    /// Instructions the phase's intervals cover in the trace.
    pub measured_insts: u64,
    /// What the sampler *estimated* for the phase: metrics of its
    /// selected representative point.
    pub est: MetricEstimate,
    /// What the phase *actually* did: ground-truth metrics aggregated
    /// over every interval assigned to it.
    pub measured: MetricEstimate,
    /// Signed share of the whole-benchmark relative CPI error,
    /// `weight * (est_cpi - meas_cpi) / truth_cpi`.
    pub cpi_err_share: f64,
    /// Signed share of the absolute L1D hit-rate error.
    pub l1_err_share: f64,
    /// Signed share of the absolute L2 hit-rate error.
    pub l2_err_share: f64,
}

/// The full error decomposition of one benchmark under one machine
/// configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyAttribution {
    /// Benchmark name.
    pub benchmark: String,
    /// Per-phase decomposition, sorted by cluster id.
    pub phases: Vec<PhaseAttribution>,
    /// Instruction-mass share of the trace that classification excluded
    /// (prologue/epilogue intervals); error incurred there is not
    /// attributable to any phase.
    pub unclassified_weight: f64,
    /// Whole-run ground truth (from the segmented pass's telescoped
    /// totals — bit-identical to [`crate::estimate::ground_truth`]).
    pub truth: MetricEstimate,
    /// The sampled whole-program estimate being attributed.
    pub estimate: MetricEstimate,
    /// Signed headline error, `(est_cpi - truth_cpi) / truth_cpi`.
    pub total_cpi_rel_err: f64,
}

impl AccuracyAttribution {
    /// Residual of the CPI decomposition: the part of the headline
    /// error the per-phase shares do *not* explain (unclassified mass
    /// plus the weighting-scheme mismatch between per-phase CPI means
    /// and the cycles-over-instructions truth). Near zero when the
    /// prologue/epilogue share is small.
    pub fn cpi_residual(&self) -> f64 {
        self.total_cpi_rel_err - self.phases.iter().map(|p| p.cpi_err_share).sum::<f64>()
    }

    /// Render as a JSON object matching the `attribution` entry
    /// contract `obs-check` validates (`benchmark` + `phases` with
    /// numeric `cluster`/`weight`/`cpi_err_share`).
    pub fn to_json(&self) -> Value {
        let est = |e: &MetricEstimate| {
            Value::Obj(BTreeMap::from([
                ("cpi".to_string(), Value::Num(e.cpi)),
                ("l1_hit_rate".to_string(), Value::Num(e.l1_hit_rate)),
                ("l2_hit_rate".to_string(), Value::Num(e.l2_hit_rate)),
            ]))
        };
        let phases = self
            .phases
            .iter()
            .map(|p| {
                Value::Obj(BTreeMap::from([
                    ("cluster".to_string(), Value::Num(p.cluster as f64)),
                    ("weight".to_string(), Value::Num(p.weight)),
                    ("instances".to_string(), Value::Num(p.instances as f64)),
                    ("measured_insts".to_string(), Value::Num(p.measured_insts as f64)),
                    ("est".to_string(), est(&p.est)),
                    ("measured".to_string(), est(&p.measured)),
                    ("cpi_err_share".to_string(), Value::Num(p.cpi_err_share)),
                    ("l1_err_share".to_string(), Value::Num(p.l1_err_share)),
                    ("l2_err_share".to_string(), Value::Num(p.l2_err_share)),
                ]))
            })
            .collect();
        Value::Obj(BTreeMap::from([
            ("benchmark".to_string(), Value::Str(self.benchmark.clone())),
            ("phases".to_string(), Value::Arr(phases)),
            ("unclassified_weight".to_string(), Value::Num(self.unclassified_weight)),
            ("truth".to_string(), est(&self.truth)),
            ("estimate".to_string(), est(&self.estimate)),
            ("total_cpi_rel_err".to_string(), Value::Num(self.total_cpi_rel_err)),
        ]))
    }
}

/// Attribute a COASTS estimate's error to its coarse phases.
///
/// Runs the segmented ground-truth pass over `co.intervals` (one full
/// detailed simulation — the same cost as a [`crate::ground_truth`]
/// call, which this subsumes: the telescoped segment totals *are* the
/// whole-run truth) and folds the per-interval measurements into
/// per-cluster aggregates via `co.simpoints.assignments`.
///
/// `out` must be the execution outcome of `co.plan` under `config` —
/// its `per_point` metrics are matched positionally to
/// `co.simpoints.points`.
pub fn attribute(
    cb: &CompiledBenchmark,
    config: &MachineConfig,
    co: &CoastsOutcome,
    out: &ExecutionOutcome,
) -> AccuracyAttribution {
    let lens: Vec<u64> = co.intervals.iter().map(|iv| iv.len).collect();
    let segments = ground_truth_segmented(cb, config, &lens);
    attribute_segments(&cb.spec().name, co, out, &segments)
}

/// [`attribute`] on a precomputed segmented-truth pass, one segment per
/// entry of `co.intervals`. A harness that already pays the segmented
/// pass (its telescoped totals double as the whole-run ground truth)
/// uses this to attribute without a second detailed simulation.
pub fn attribute_segments(
    benchmark: &str,
    co: &CoastsOutcome,
    out: &ExecutionOutcome,
    segments: &[SimMetrics],
) -> AccuracyAttribution {
    let _span = mlpa_obs::span("core.attribution");
    assert_eq!(
        out.per_point.len(),
        co.simpoints.points.len(),
        "outcome does not match the COASTS plan"
    );
    assert_eq!(segments.len(), co.intervals.len(), "one truth segment per coarse interval");

    // Telescoped totals = whole-run truth.
    let mut whole = SimMetrics::default();
    for s in segments {
        whole += *s;
    }
    let truth = whole.estimate();

    // Fold segment truth into per-cluster aggregates through the
    // assignment map (body indices offset by `body_start`).
    let k = co.simpoints.k;
    let mut measured = vec![SimMetrics::default(); k];
    let mut instances = vec![0usize; k];
    for (b, &c) in co.simpoints.assignments.iter().enumerate() {
        measured[c] += segments[co.body_start + b];
        instances[c] += 1;
    }
    let classified_insts: u64 = measured.iter().map(|m| m.instructions).sum();
    let total_insts: u64 = whole.instructions;

    let mut phases: Vec<PhaseAttribution> = co
        .simpoints
        .points
        .iter()
        .zip(&out.per_point)
        .map(|(p, m)| {
            let est = m.estimate();
            let meas = measured[p.cluster].estimate();
            let cpi_err_share =
                if truth.cpi > 0.0 { p.weight * (est.cpi - meas.cpi) / truth.cpi } else { 0.0 };
            PhaseAttribution {
                cluster: p.cluster,
                weight: p.weight,
                instances: instances[p.cluster],
                measured_insts: measured[p.cluster].instructions,
                est,
                measured: meas,
                cpi_err_share,
                l1_err_share: p.weight * (est.l1_hit_rate - meas.l1_hit_rate),
                l2_err_share: p.weight * (est.l2_hit_rate - meas.l2_hit_rate),
            }
        })
        .collect();
    phases.sort_by_key(|p| p.cluster);

    let total_cpi_rel_err =
        if truth.cpi > 0.0 { (out.estimate.cpi - truth.cpi) / truth.cpi } else { 0.0 };
    AccuracyAttribution {
        benchmark: benchmark.to_string(),
        phases,
        unclassified_weight: if total_insts > 0 {
            1.0 - classified_insts as f64 / total_insts as f64
        } else {
            0.0
        },
        truth,
        estimate: out.estimate,
        total_cpi_rel_err,
    }
}

/// Render a set of attributions as the `attribution` JSON array
/// injected into `RUN_REPORT.json` (and validated by `obs-check`).
pub fn render_attribution_json(attrs: &[AccuracyAttribution]) -> String {
    Value::Arr(attrs.iter().map(AccuracyAttribution::to_json).collect()).to_string()
}

/// Render a human-readable error-decomposition report
/// (`results/accuracy_report.txt`).
pub fn render_report(attrs: &[AccuracyAttribution]) -> String {
    let mut s = String::new();
    s.push_str("Accuracy attribution: per-coarse-phase error decomposition\n");
    s.push_str("==========================================================\n");
    s.push_str(
        "\nShares are signed contributions to the benchmark error \
         (CPI relative to truth, hit rates absolute); shares of \
         opposite sign cancel in the aggregate deviation.\n",
    );
    for a in attrs {
        s.push_str(&format!(
            "\n{}: truth CPI {:.4}, estimate {:.4} ({:+.2}%); unclassified {:.2}% of trace\n",
            a.benchmark,
            a.truth.cpi,
            a.estimate.cpi,
            a.total_cpi_rel_err * 100.0,
            a.unclassified_weight * 100.0,
        ));
        s.push_str(
            "  phase weight insts       est/meas CPI    CPI share     \
             est/meas L1%     L1 share     est/meas L2%     L2 share\n",
        );
        for p in &a.phases {
            s.push_str(&format!(
                "  {:>5} {:>5.1}% {:>5}  {:>7.4}/{:<7.4} {:>+9.4}%  \
                 {:>6.2}/{:<6.2} {:>+9.4}%  {:>6.2}/{:<6.2} {:>+9.4}%\n",
                p.cluster,
                p.weight * 100.0,
                p.instances,
                p.est.cpi,
                p.measured.cpi,
                p.cpi_err_share * 100.0,
                p.est.l1_hit_rate * 100.0,
                p.measured.l1_hit_rate * 100.0,
                p.l1_err_share * 100.0,
                p.est.l2_hit_rate * 100.0,
                p.measured.l2_hit_rate * 100.0,
                p.l2_err_share * 100.0,
            ));
        }
        s.push_str(&format!("  CPI residual (unattributed): {:+.4}%\n", a.cpi_residual() * 100.0));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coasts::{coasts, CoastsConfig};
    use crate::estimate::{execute_plan, ground_truth, WarmupMode};
    use mlpa_workloads::spec::{BenchmarkSpec, PhaseSpec, ScriptEntry};

    fn multi_phase_cb() -> CompiledBenchmark {
        use mlpa_workloads::behavior::{InstMix, MemoryPattern};
        use mlpa_workloads::spec::BlockSpec;
        let hot = PhaseSpec {
            name: "hot".into(),
            blocks: vec![BlockSpec {
                mix: InstMix { load: 0.35, store: 0.1, ..InstMix::default() },
                mem: MemoryPattern::RandomInSet { working_set: 64 * 1024 },
                ..BlockSpec::default()
            }],
            ..PhaseSpec::default()
        };
        let cold = PhaseSpec { name: "cold".into(), ..PhaseSpec::default() };
        CompiledBenchmark::compile(&BenchmarkSpec {
            phases: vec![hot, cold],
            script: (0..10).map(|i| ScriptEntry::new(i % 2, 60_000)).collect(),
            ..BenchmarkSpec::default()
        })
        .unwrap()
    }

    fn attributed() -> (CompiledBenchmark, AccuracyAttribution) {
        let cb = multi_phase_cb();
        let config = MachineConfig::table1_base();
        let co = coasts(&cb, &CoastsConfig::default()).unwrap();
        let out = execute_plan(&cb, &config, &co.plan, WarmupMode::Warmed);
        let attr = attribute(&cb, &config, &co, &out);
        (cb, attr)
    }

    #[test]
    fn phases_partition_the_classified_mass() {
        let (_, a) = attributed();
        assert!(!a.phases.is_empty());
        // Clusters are distinct and sorted.
        assert!(a.phases.windows(2).all(|w| w[0].cluster < w[1].cluster));
        // Weights sum to 1 (they are the estimate's combination
        // weights over the classified mass).
        let w: f64 = a.phases.iter().map(|p| p.weight).sum();
        assert!((w - 1.0).abs() < 1e-9, "weights sum to {w}");
        assert!(a.unclassified_weight >= 0.0 && a.unclassified_weight < 0.5);
        // Every classified instance is counted exactly once.
        let n: usize = a.phases.iter().map(|p| p.instances).sum();
        assert!(n >= 1);
    }

    #[test]
    fn truth_matches_single_pass_ground_truth() {
        let (cb, a) = attributed();
        let whole = ground_truth(&cb, &MachineConfig::table1_base()).estimate();
        assert_eq!(a.truth, whole, "telescoped truth must be bit-identical");
        let signed = (a.estimate.cpi - whole.cpi) / whole.cpi;
        assert!((a.total_cpi_rel_err - signed).abs() < 1e-12);
    }

    #[test]
    fn shares_reconstruct_the_phase_level_error() {
        let (_, a) = attributed();
        // The shares are an exact decomposition of the *estimate vs
        // per-phase-measured* gap, by construction.
        let recon: f64 =
            a.phases.iter().map(|p| p.weight * (p.est.cpi - p.measured.cpi) / a.truth.cpi).sum();
        let share_sum: f64 = a.phases.iter().map(|p| p.cpi_err_share).sum();
        assert!((recon - share_sum).abs() < 1e-12);
        // And the residual accounts for whatever they do not explain.
        assert!((share_sum + a.cpi_residual() - a.total_cpi_rel_err).abs() < 1e-12);
    }

    #[test]
    fn deterministic() {
        let (_, a) = attributed();
        let (_, b) = attributed();
        assert_eq!(a, b);
    }

    #[test]
    fn json_round_trips_and_matches_contract() {
        let (_, a) = attributed();
        let rendered = render_attribution_json(std::slice::from_ref(&a));
        let v = mlpa_obs::json::parse(&rendered).expect("valid JSON");
        let arr = v.as_arr().expect("array");
        assert_eq!(arr.len(), 1);
        let e = &arr[0];
        assert_eq!(e.get("benchmark").and_then(Value::as_str), Some(a.benchmark.as_str()));
        let phases = e.get("phases").and_then(Value::as_arr).expect("phases array");
        assert_eq!(phases.len(), a.phases.len());
        for (pv, p) in phases.iter().zip(&a.phases) {
            assert_eq!(pv.get("cluster").and_then(Value::as_f64), Some(p.cluster as f64));
            assert_eq!(pv.get("weight").and_then(Value::as_f64), Some(p.weight));
            assert_eq!(pv.get("cpi_err_share").and_then(Value::as_f64), Some(p.cpi_err_share));
        }
    }

    #[test]
    fn report_mentions_every_phase() {
        let (_, a) = attributed();
        let text = render_report(std::slice::from_ref(&a));
        assert!(text.contains(&a.benchmark));
        for p in &a.phases {
            assert!(text.contains(&format!("  {:>5} ", p.cluster)), "phase {} row", p.cluster);
        }
        assert!(text.contains("residual"));
    }
}
