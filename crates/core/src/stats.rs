//! Small statistics helpers used by the evaluation (the paper reports
//! geometric means throughout).

/// Geometric mean of positive values.
///
/// # Panics
///
/// Panics if `values` is empty or any value is non-positive.
///
/// # Example
///
/// ```
/// use mlpa_core::stats::geometric_mean;
///
/// assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
/// ```
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of nothing");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of nothing");
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample standard deviation (n − 1 denominator); 0 for fewer than two
/// values.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// Standard error of the mean (`std_dev / √n`); 0 for fewer than two
/// values.
///
/// # Example
///
/// ```
/// use mlpa_core::stats::standard_error;
///
/// let se = standard_error(&[1.0, 2.0, 3.0, 4.0]);
/// assert!(se > 0.0 && se < 1.0);
/// ```
pub fn standard_error(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    std_dev(values) / (values.len() as f64).sqrt()
}

/// Maximum (the paper's "Worst" columns).
///
/// # Panics
///
/// Panics if `values` is empty or contains NaN.
pub fn worst(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "worst of nothing");
    values.iter().copied().max_by(|a, b| a.partial_cmp(b).expect("no NaNs")).expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_of_identical_is_identity() {
        assert!((geometric_mean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_below_arithmetic() {
        let v = [1.0, 10.0, 100.0];
        assert!(geometric_mean(&v) < mean(&v));
        assert!((geometric_mean(&v) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn worst_picks_max() {
        assert_eq!(worst(&[0.1, 0.9, 0.5]), 0.9);
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn geometric_rejects_zero() {
        let _ = geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "of nothing")]
    fn empty_panics() {
        let _ = mean(&[]);
    }
}

#[cfg(test)]
mod stats_extra_tests {
    use super::*;

    #[test]
    fn std_dev_and_stderr() {
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert_eq!(standard_error(&[5.0]), 0.0);
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        // Known sample std dev of this classic dataset ≈ 2.138.
        assert!((std_dev(&v) - 2.138).abs() < 0.01, "{}", std_dev(&v));
        assert!((standard_error(&v) - 2.138 / 8f64.sqrt()).abs() < 0.01);
    }
}
