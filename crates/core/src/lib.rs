#![warn(missing_docs)]

//! Multi-level phase analysis for sampling simulation — the primary
//! contribution of the DATE 2013 paper, reproduced as a Rust library.
//!
//! The library turns a benchmark into an *executable sampling plan* and
//! executes it, three ways:
//!
//! | Method | Builder | Granularity | Selection |
//! |---|---|---|---|
//! | SimPoint baseline | [`pipeline::simpoint_baseline`] | fixed 10 k (≙ 10 M) intervals, `Kmax = 30` | closest to centroid |
//! | COASTS | [`coasts::coasts`] | outer-loop iterations, `Kmax = 3` | **earliest instance** |
//! | Multi-level | [`multilevel::multilevel`] | COASTS, then fine re-sampling of points > 300 k (≙ 300 M) | composed |
//!
//! A [`plan::SimulationPlan`] carries the Table III accounting (detail
//! %, functional %, point count, last-point position);
//! [`estimate::execute_plan`] runs it against a
//! [`MachineConfig`](mlpa_sim::MachineConfig) for the Table II accuracy
//! comparison; [`timing::CostModel`] turns plan accounting into the
//! Fig. 3/4 speedups.
//!
//! # Example: the whole paper in ten lines
//!
//! ```
//! use mlpa_core::prelude::*;
//! use mlpa_workloads::{suite, CompiledBenchmark};
//!
//! let spec = suite::benchmark("lucas").unwrap().scaled(0.05);
//! let cb = CompiledBenchmark::compile(&spec)?;
//! let baseline = simpoint_baseline(&cb, FINE_INTERVAL, &SimPointConfig::fine_10m(),
//!     &ProjectionSettings::default())?;
//! let multi = multilevel(&cb, &MultilevelConfig::default())?;
//! let speedup = CostModel::paper_implied().speedup(&baseline.plan, &multi.plan);
//! assert!(speedup > 1.0, "multi-level beats SimPoint, got {speedup:.2}x");
//! # Ok::<(), String>(())
//! ```

pub mod artifact;
pub mod attribution;
pub mod cache;
pub mod coasts;
pub mod estimate;
pub mod files;
pub mod multilevel;
pub mod pipeline;
pub mod plan;
pub mod serve;
pub mod stats;
pub mod systematic;
pub mod timing;

pub use artifact::Artifact;
pub use attribution::{
    attribute, attribute_segments, render_attribution_json, render_report, AccuracyAttribution,
    PhaseAttribution,
};
pub use cache::{atomic_write, ArtifactCache, CacheKey, FlightRole, Singleflight, CACHE_SCHEMA};
pub use coasts::{coasts, coasts_with, CoastsConfig, CoastsOutcome};
pub use estimate::{
    effective_jobs, execute_plan, execute_plan_cached, execute_plan_checked, execute_plan_jobs,
    ground_truth, ground_truth_cached, ground_truth_segmented, ground_truth_segmented_cached,
    panic_message, ExecutionCost, ExecutionOutcome, WarmupMode,
};
pub use multilevel::{multilevel, multilevel_with, MultilevelConfig, MultilevelOutcome};
pub use pipeline::{
    plan_from_points, simpoint_baseline, simpoint_baseline_with, trace_insts, FineOutcome,
    ProfilingContext, ProjectionSettings, ShardDriver, FINE_INTERVAL, RESAMPLE_THRESHOLD,
};
pub use plan::{PlanPoint, SimulationPlan};
pub use timing::CostModel;

#[cfg(test)]
pub(crate) mod testobs {
    //! Shared scaffolding for tests that assert on obs counters.
    //!
    //! Counters are process-global and no-ops until `mlpa_obs::init`
    //! runs, while the test harness runs tests in parallel: the first
    //! lock acquisition initialises obs, and the lock itself keeps any
    //! counter-bumping test (cache use, serve daemons) out of another
    //! test's delta-measurement window.
    use std::sync::{Mutex, MutexGuard, Once, PoisonError};

    static COUNTER_LOCK: Mutex<()> = Mutex::new(());
    static INIT: Once = Once::new();

    pub(crate) fn counter_lock() -> MutexGuard<'static, ()> {
        INIT.call_once(|| {
            mlpa_obs::init(&mlpa_obs::ObsConfig { enabled: true, sink: None, sample_ms: None })
                .expect("obs init for counter tests");
        });
        COUNTER_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Convenience re-exports for the common workflow.
pub mod prelude {
    pub use crate::coasts::{coasts, coasts_with, CoastsConfig};
    pub use crate::estimate::{execute_plan, execute_plan_jobs, ground_truth, WarmupMode};
    pub use crate::multilevel::{multilevel, multilevel_with, MultilevelConfig};
    pub use crate::pipeline::{
        simpoint_baseline, simpoint_baseline_with, ProfilingContext, ProjectionSettings,
        ShardDriver, FINE_INTERVAL, RESAMPLE_THRESHOLD,
    };
    pub use crate::plan::SimulationPlan;
    pub use crate::stats::{geometric_mean, mean, worst};
    pub use crate::timing::CostModel;
    pub use mlpa_phase::simpoint::SimPointConfig;
}
