//! Exact text serialization for cacheable pipeline artifacts.
//!
//! Every expensive product of the pipeline — interval profiles, loop
//! profiles, SimPoint selections, COASTS / multi-level outcomes,
//! simulation plans, and raw metrics — implements [`Artifact`], a tiny
//! codec over a whitespace-separated token stream. The format is
//! designed for *exact* round-trips, not readability:
//!
//! - integers are decimal tokens;
//! - `f64` values are written as the hex of [`f64::to_bits`], so every
//!   bit pattern (including values that do not survive a shortest-
//!   decimal round-trip formatter) is reproduced exactly;
//! - strings are length-prefixed so embedded whitespace is safe.
//!
//! Exactness matters because the artifact cache (see [`crate::cache`])
//! must be invisible: a warm-cache run has to produce byte-identical
//! reports to the cold run that populated it. Decoding is defensive —
//! every read returns `Err` on malformed input rather than panicking,
//! so a corrupt cache entry is rejected cleanly and regenerated.

use std::fmt::Write as _;

use mlpa_phase::shard::{RawInterval, ShardLoopProfile, ShardLoopStats};
use mlpa_phase::{CyclicStructure, Interval, LoopProfile, SimPoint, SimPoints};
use mlpa_sim::{MetricEstimate, SimMetrics};

use crate::coasts::CoastsOutcome;
use crate::estimate::{ExecutionCost, ExecutionOutcome};
use crate::multilevel::{MultilevelOutcome, ResampledPoint};
use crate::pipeline::FineOutcome;
use crate::plan::{PlanPoint, SimulationPlan};

/// Token-stream encoder. See the module docs for the format.
#[derive(Debug, Default)]
pub struct Enc {
    buf: String,
}

impl Enc {
    /// Start an empty payload.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// Append an unsigned integer token.
    pub fn u(&mut self, v: u64) {
        let _ = write!(self.buf, "{v} ");
    }

    /// Append a `usize` token.
    pub fn z(&mut self, v: usize) {
        self.u(v as u64);
    }

    /// Append a bool token (`0` / `1`).
    pub fn b(&mut self, v: bool) {
        self.u(v as u64);
    }

    /// Append an `f64` as the hex of its bit pattern (exact round-trip,
    /// NaN-safe).
    pub fn f(&mut self, v: f64) {
        let _ = write!(self.buf, "{:x} ", v.to_bits());
    }

    /// Append a length-prefixed string (embedded whitespace is safe).
    pub fn s(&mut self, v: &str) {
        let _ = write!(self.buf, "{} {v} ", v.len());
    }

    /// Finish and return the payload.
    pub fn finish(self) -> String {
        self.buf
    }
}

/// Token-stream decoder matching [`Enc`]. Every accessor reports
/// malformed input as `Err` instead of panicking.
#[derive(Debug)]
pub struct Dec<'a> {
    rest: &'a str,
}

impl<'a> Dec<'a> {
    /// Decode from a payload produced by [`Enc::finish`].
    pub fn new(payload: &'a str) -> Dec<'a> {
        Dec { rest: payload }
    }

    fn tok(&mut self) -> Result<&'a str, String> {
        self.rest = self.rest.trim_start();
        if self.rest.is_empty() {
            return Err("unexpected end of payload".into());
        }
        let end = self.rest.find(|c: char| c.is_whitespace()).unwrap_or(self.rest.len());
        let (tok, rest) = self.rest.split_at(end);
        self.rest = rest;
        Ok(tok)
    }

    /// Read an unsigned integer token.
    pub fn u(&mut self) -> Result<u64, String> {
        let t = self.tok()?;
        t.parse().map_err(|e| format!("bad integer {t:?}: {e}"))
    }

    /// Read a `usize` token.
    pub fn z(&mut self) -> Result<usize, String> {
        let v = self.u()?;
        usize::try_from(v).map_err(|_| format!("count {v} does not fit usize"))
    }

    /// Read a bool token.
    pub fn b(&mut self) -> Result<bool, String> {
        match self.u()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(format!("bad bool token {v}")),
        }
    }

    /// Read an `f64` encoded as hex bits.
    pub fn f(&mut self) -> Result<f64, String> {
        let t = self.tok()?;
        u64::from_str_radix(t, 16)
            .map(f64::from_bits)
            .map_err(|e| format!("bad float bits {t:?}: {e}"))
    }

    /// Read a length-prefixed string.
    pub fn s(&mut self) -> Result<String, String> {
        let n = self.z()?;
        let rest = self.rest.strip_prefix(' ').ok_or("malformed string prefix")?;
        if rest.len() < n || !rest.is_char_boundary(n) {
            return Err(format!("string of {n} bytes overruns payload"));
        }
        let (s, rest) = rest.split_at(n);
        self.rest = rest;
        Ok(s.to_owned())
    }

    /// Assert the payload is fully consumed.
    pub fn done(&self) -> Result<(), String> {
        if self.rest.trim().is_empty() {
            Ok(())
        } else {
            Err("trailing data after payload".into())
        }
    }
}

/// A pipeline product that can be stored in the artifact cache.
///
/// `KIND` names the artifact family; it is part of both the on-disk
/// directory layout and the entry header, so two artifact types can
/// never be confused for one another even under a hash collision.
pub trait Artifact: Sized {
    /// Stable artifact-family name (also the cache subdirectory).
    const KIND: &'static str;
    /// Serialize into `enc`.
    fn encode(&self, enc: &mut Enc);
    /// Deserialize; must reject malformed input with `Err`.
    fn decode(dec: &mut Dec) -> Result<Self, String>;
}

/// Cap initial `Vec` allocations during decode so a corrupt length
/// token cannot request an absurd reservation; growth past the cap is
/// organic and bounded by the actual payload size.
fn cap(n: usize) -> usize {
    n.min(4096)
}

fn enc_metrics(e: &mut Enc, m: &SimMetrics) {
    for v in [
        m.instructions,
        m.cycles,
        m.l1d_hits,
        m.l1d_misses,
        m.l1i_hits,
        m.l1i_misses,
        m.l2_hits,
        m.l2_misses,
        m.branches,
        m.mispredicts,
        m.loads,
        m.stores,
    ] {
        e.u(v);
    }
}

fn dec_metrics(d: &mut Dec) -> Result<SimMetrics, String> {
    Ok(SimMetrics {
        instructions: d.u()?,
        cycles: d.u()?,
        l1d_hits: d.u()?,
        l1d_misses: d.u()?,
        l1i_hits: d.u()?,
        l1i_misses: d.u()?,
        l2_hits: d.u()?,
        l2_misses: d.u()?,
        branches: d.u()?,
        mispredicts: d.u()?,
        loads: d.u()?,
        stores: d.u()?,
    })
}

fn enc_estimate(e: &mut Enc, est: &MetricEstimate) {
    e.f(est.cpi);
    e.f(est.l1_hit_rate);
    e.f(est.l2_hit_rate);
    e.f(est.mispredict_rate);
}

fn dec_estimate(d: &mut Dec) -> Result<MetricEstimate, String> {
    Ok(MetricEstimate {
        cpi: d.f()?,
        l1_hit_rate: d.f()?,
        l2_hit_rate: d.f()?,
        mispredict_rate: d.f()?,
    })
}

fn enc_interval(e: &mut Enc, iv: &Interval) {
    e.z(iv.index);
    e.u(iv.start);
    e.u(iv.len);
    e.z(iv.vector.len());
    for &v in &iv.vector {
        e.f(v);
    }
}

fn dec_interval(d: &mut Dec) -> Result<Interval, String> {
    let index = d.z()?;
    let start = d.u()?;
    let len = d.u()?;
    let n = d.z()?;
    let mut vector = Vec::with_capacity(cap(n));
    for _ in 0..n {
        vector.push(d.f()?);
    }
    Ok(Interval { index, start, len, vector })
}

fn enc_simpoints(e: &mut Enc, sp: &SimPoints) {
    e.z(sp.points.len());
    for p in &sp.points {
        e.z(p.interval);
        e.u(p.start);
        e.u(p.len);
        e.f(p.weight);
        e.z(p.cluster);
    }
    e.z(sp.k);
    e.z(sp.num_intervals);
    e.u(sp.total_insts);
    e.z(sp.bic_scores.len());
    for &b in &sp.bic_scores {
        e.f(b);
    }
    e.z(sp.assignments.len());
    for &a in &sp.assignments {
        e.z(a);
    }
}

fn dec_simpoints(d: &mut Dec) -> Result<SimPoints, String> {
    let np = d.z()?;
    let mut points = Vec::with_capacity(cap(np));
    for _ in 0..np {
        points.push(SimPoint {
            interval: d.z()?,
            start: d.u()?,
            len: d.u()?,
            weight: d.f()?,
            cluster: d.z()?,
        });
    }
    let k = d.z()?;
    let num_intervals = d.z()?;
    let total_insts = d.u()?;
    let nb = d.z()?;
    let mut bic_scores = Vec::with_capacity(cap(nb));
    for _ in 0..nb {
        bic_scores.push(d.f()?);
    }
    let na = d.z()?;
    let mut assignments = Vec::with_capacity(cap(na));
    for _ in 0..na {
        assignments.push(d.z()?);
    }
    Ok(SimPoints { points, k, num_intervals, total_insts, bic_scores, assignments })
}

fn enc_plan(e: &mut Enc, plan: &SimulationPlan) {
    e.z(plan.len());
    for p in plan.points() {
        e.u(p.start);
        e.u(p.len);
        e.f(p.weight);
    }
    e.u(plan.total_insts());
}

fn dec_plan(d: &mut Dec) -> Result<SimulationPlan, String> {
    let n = d.z()?;
    let mut points = Vec::with_capacity(cap(n));
    for _ in 0..n {
        points.push(PlanPoint { start: d.u()?, len: d.u()?, weight: d.f()? });
    }
    let total = d.u()?;
    // `new` re-validates sortedness, coverage, and the weight sum, so a
    // decoded plan carries the same guarantees as a computed one.
    SimulationPlan::new(points, total)
}

fn enc_loop_profile(e: &mut Enc, lp: &LoopProfile) {
    e.z(lp.structures.len());
    for s in &lp.structures {
        e.u(s.header.raw() as u64);
        e.u(s.coverage_insts);
        e.u(s.back_edges);
        e.u(s.entries);
        e.z(s.min_depth);
    }
    e.u(lp.total_insts);
}

fn dec_loop_profile(d: &mut Dec) -> Result<LoopProfile, String> {
    let n = d.z()?;
    let mut structures = Vec::with_capacity(cap(n));
    for _ in 0..n {
        let raw = d.u()?;
        let header = mlpa_isa::BlockId::new(
            u32::try_from(raw).map_err(|_| format!("block id {raw} does not fit u32"))?,
        );
        structures.push(CyclicStructure {
            header,
            coverage_insts: d.u()?,
            back_edges: d.u()?,
            entries: d.u()?,
            min_depth: d.z()?,
        });
    }
    let total_insts = d.u()?;
    Ok(LoopProfile { structures, total_insts })
}

impl Artifact for SimulationPlan {
    const KIND: &'static str = "plan";
    fn encode(&self, enc: &mut Enc) {
        enc_plan(enc, self);
    }
    fn decode(dec: &mut Dec) -> Result<Self, String> {
        dec_plan(dec)
    }
}

impl Artifact for SimMetrics {
    const KIND: &'static str = "truth";
    fn encode(&self, enc: &mut Enc) {
        enc_metrics(enc, self);
    }
    fn decode(dec: &mut Dec) -> Result<Self, String> {
        dec_metrics(dec)
    }
}

impl Artifact for Vec<SimMetrics> {
    const KIND: &'static str = "truth-segments";
    fn encode(&self, enc: &mut Enc) {
        enc.z(self.len());
        for m in self {
            enc_metrics(enc, m);
        }
    }
    fn decode(dec: &mut Dec) -> Result<Self, String> {
        let n = dec.z()?;
        let mut out = Vec::with_capacity(cap(n));
        for _ in 0..n {
            out.push(dec_metrics(dec)?);
        }
        Ok(out)
    }
}

impl Artifact for Vec<Interval> {
    const KIND: &'static str = "intervals";
    fn encode(&self, enc: &mut Enc) {
        enc.z(self.len());
        for iv in self {
            enc_interval(enc, iv);
        }
    }
    fn decode(dec: &mut Dec) -> Result<Self, String> {
        let n = dec.z()?;
        let mut out = Vec::with_capacity(cap(n));
        for _ in 0..n {
            out.push(dec_interval(dec)?);
        }
        Ok(out)
    }
}

impl Artifact for LoopProfile {
    const KIND: &'static str = "loop-profile";
    fn encode(&self, enc: &mut Enc) {
        enc_loop_profile(enc, self);
    }
    fn decode(dec: &mut Dec) -> Result<Self, String> {
        dec_loop_profile(dec)
    }
}

impl Artifact for SimPoints {
    const KIND: &'static str = "simpoints";
    fn encode(&self, enc: &mut Enc) {
        enc_simpoints(enc, self);
    }
    fn decode(dec: &mut Dec) -> Result<Self, String> {
        dec_simpoints(dec)
    }
}

/// Iteration-boundary profile of one loop header: the per-iteration
/// intervals plus whether a prologue precedes the first boundary. This
/// mirrors the private boundary pass state inside `ProfilingContext`.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundaryArtifact {
    /// Raw id of the header block the boundaries belong to.
    pub header: u32,
    /// True when instructions precede the first header execution.
    pub has_prologue: bool,
    /// Per-iteration intervals with projected BBVs.
    pub intervals: Vec<Interval>,
}

impl Artifact for BoundaryArtifact {
    const KIND: &'static str = "boundary";
    fn encode(&self, enc: &mut Enc) {
        enc.u(self.header as u64);
        enc.b(self.has_prologue);
        enc.z(self.intervals.len());
        for iv in &self.intervals {
            enc_interval(enc, iv);
        }
    }
    fn decode(dec: &mut Dec) -> Result<Self, String> {
        let raw = dec.u()?;
        let header = u32::try_from(raw).map_err(|_| format!("block id {raw} does not fit u32"))?;
        let has_prologue = dec.b()?;
        let n = dec.z()?;
        let mut intervals = Vec::with_capacity(cap(n));
        for _ in 0..n {
            intervals.push(dec_interval(dec)?);
        }
        Ok(BoundaryArtifact { header, has_prologue, intervals })
    }
}

fn enc_raw_intervals(e: &mut Enc, pieces: &[RawInterval]) {
    e.z(pieces.len());
    for p in pieces {
        e.u(p.start);
        e.u(p.len);
        e.z(p.acc.len());
        for &v in &p.acc {
            e.f(v);
        }
    }
}

fn dec_raw_intervals(d: &mut Dec) -> Result<Vec<RawInterval>, String> {
    let n = d.z()?;
    let mut out = Vec::with_capacity(cap(n));
    for _ in 0..n {
        let start = d.u()?;
        let len = d.u()?;
        let na = d.z()?;
        let mut acc = Vec::with_capacity(cap(na));
        for _ in 0..na {
            acc.push(d.f()?);
        }
        out.push(RawInterval { start, len, acc });
    }
    Ok(out)
}

/// One segment shard of the combined profiling pass: the shard's
/// un-normalised fine-interval pieces plus its loop tallies. Cached per
/// `(spec, projection, interval, shard-count, shard-index)` so a
/// crashed sharded run resumes at the last completed segment.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileShardArtifact {
    /// Un-normalised fine-interval pieces, in trace order.
    pub pieces: Vec<RawInterval>,
    /// The shard's loop-profile contribution.
    pub loops: ShardLoopProfile,
}

impl Artifact for ProfileShardArtifact {
    const KIND: &'static str = "profile-shard";
    fn encode(&self, enc: &mut Enc) {
        enc_raw_intervals(enc, &self.pieces);
        enc.z(self.loops.stats.len());
        for s in &self.loops.stats {
            enc.u(s.header.raw() as u64);
            enc.u(s.coverage_insts);
            enc.u(s.back_edges);
            enc.u(s.entries);
            match s.min_depth {
                Some(d) => {
                    enc.b(true);
                    enc.z(d);
                }
                None => enc.b(false),
            }
        }
        enc.u(self.loops.total_insts);
    }
    fn decode(dec: &mut Dec) -> Result<Self, String> {
        let pieces = dec_raw_intervals(dec)?;
        let n = dec.z()?;
        let mut stats = Vec::with_capacity(cap(n));
        for _ in 0..n {
            let raw = dec.u()?;
            let header = mlpa_isa::BlockId::new(
                u32::try_from(raw).map_err(|_| format!("block id {raw} does not fit u32"))?,
            );
            let coverage_insts = dec.u()?;
            let back_edges = dec.u()?;
            let entries = dec.u()?;
            let min_depth = if dec.b()? { Some(dec.z()?) } else { None };
            stats.push(ShardLoopStats { header, coverage_insts, back_edges, entries, min_depth });
        }
        let total_insts = dec.u()?;
        Ok(ProfileShardArtifact { pieces, loops: ShardLoopProfile { stats, total_insts } })
    }
}

/// One segment shard of a boundary-profiling pass: the shard's
/// un-normalised pieces plus the global position of the first header
/// entry it observed (`u64::MAX` encodes "none").
#[derive(Debug, Clone, PartialEq)]
pub struct BoundaryShardArtifact {
    /// Un-normalised boundary-interval pieces, in trace order.
    pub pieces: Vec<RawInterval>,
    /// Global position of the shard's first observed header entry.
    pub first_header_pos: Option<u64>,
}

impl Artifact for BoundaryShardArtifact {
    const KIND: &'static str = "boundary-shard";
    fn encode(&self, enc: &mut Enc) {
        enc_raw_intervals(enc, &self.pieces);
        match self.first_header_pos {
            Some(p) => {
                enc.b(true);
                enc.u(p);
            }
            None => enc.b(false),
        }
    }
    fn decode(dec: &mut Dec) -> Result<Self, String> {
        let pieces = dec_raw_intervals(dec)?;
        let first_header_pos = if dec.b()? { Some(dec.u()?) } else { None };
        Ok(BoundaryShardArtifact { pieces, first_header_pos })
    }
}

impl Artifact for FineOutcome {
    const KIND: &'static str = "fine-outcome";
    fn encode(&self, enc: &mut Enc) {
        enc_plan(enc, &self.plan);
        enc_simpoints(enc, &self.simpoints);
        enc.u(self.interval_len);
    }
    fn decode(dec: &mut Dec) -> Result<Self, String> {
        Ok(FineOutcome {
            plan: dec_plan(dec)?,
            simpoints: dec_simpoints(dec)?,
            interval_len: dec.u()?,
        })
    }
}

impl Artifact for CoastsOutcome {
    const KIND: &'static str = "coasts-outcome";
    fn encode(&self, enc: &mut Enc) {
        enc_plan(enc, &self.plan);
        enc_simpoints(enc, &self.simpoints);
        enc.z(self.intervals.len());
        for iv in &self.intervals {
            enc_interval(enc, iv);
        }
        enc_loop_profile(enc, &self.profile);
        enc.u(self.header.raw() as u64);
        enc.z(self.body_start);
    }
    fn decode(dec: &mut Dec) -> Result<Self, String> {
        let plan = dec_plan(dec)?;
        let simpoints = dec_simpoints(dec)?;
        let n = dec.z()?;
        let mut intervals = Vec::with_capacity(cap(n));
        for _ in 0..n {
            intervals.push(dec_interval(dec)?);
        }
        let profile = dec_loop_profile(dec)?;
        let raw = dec.u()?;
        let header = mlpa_isa::BlockId::new(
            u32::try_from(raw).map_err(|_| format!("block id {raw} does not fit u32"))?,
        );
        let body_start = dec.z()?;
        Ok(CoastsOutcome { plan, simpoints, intervals, profile, header, body_start })
    }
}

impl Artifact for MultilevelOutcome {
    const KIND: &'static str = "multilevel-outcome";
    fn encode(&self, enc: &mut Enc) {
        enc_plan(enc, &self.plan);
        self.coasts.encode(enc);
        enc.z(self.resampled.len());
        for r in &self.resampled {
            enc.u(r.coarse_start);
            enc.u(r.coarse_len);
            enc_simpoints(enc, &r.fine);
        }
    }
    fn decode(dec: &mut Dec) -> Result<Self, String> {
        let plan = dec_plan(dec)?;
        let coasts = CoastsOutcome::decode(dec)?;
        let n = dec.z()?;
        let mut resampled = Vec::with_capacity(cap(n));
        for _ in 0..n {
            resampled.push(ResampledPoint {
                coarse_start: dec.u()?,
                coarse_len: dec.u()?,
                fine: dec_simpoints(dec)?,
            });
        }
        Ok(MultilevelOutcome { plan, coasts, resampled })
    }
}

impl Artifact for ExecutionOutcome {
    const KIND: &'static str = "plan-exec";
    fn encode(&self, enc: &mut Enc) {
        enc_estimate(enc, &self.estimate);
        enc.z(self.per_point.len());
        for m in &self.per_point {
            enc_metrics(enc, m);
        }
        enc.u(self.cost.functional_insts);
        enc.u(self.cost.detailed_insts);
    }
    fn decode(dec: &mut Dec) -> Result<Self, String> {
        let estimate = dec_estimate(dec)?;
        let n = dec.z()?;
        let mut per_point = Vec::with_capacity(cap(n));
        for _ in 0..n {
            per_point.push(dec_metrics(dec)?);
        }
        let cost = ExecutionCost { functional_insts: dec.u()?, detailed_insts: dec.u()? };
        Ok(ExecutionOutcome { estimate, per_point, cost })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<A: Artifact + PartialEq + std::fmt::Debug>(a: &A) {
        let mut e = Enc::new();
        a.encode(&mut e);
        let payload = e.finish();
        let mut d = Dec::new(&payload);
        let back = A::decode(&mut d).expect("decode");
        d.done().expect("fully consumed");
        assert_eq!(&back, a);
    }

    fn sample_metrics(seed: u64) -> SimMetrics {
        SimMetrics {
            instructions: seed + 1,
            cycles: seed * 3 + 2,
            l1d_hits: seed + 3,
            l1d_misses: seed + 4,
            l1i_hits: seed + 5,
            l1i_misses: seed + 6,
            l2_hits: seed + 7,
            l2_misses: seed + 8,
            branches: seed + 9,
            mispredicts: seed + 10,
            loads: seed + 11,
            stores: seed + 12,
        }
    }

    fn sample_simpoints() -> SimPoints {
        SimPoints {
            points: vec![
                SimPoint { interval: 0, start: 0, len: 100, weight: 0.25, cluster: 0 },
                SimPoint { interval: 3, start: 300, len: 100, weight: 0.75, cluster: 1 },
            ],
            k: 2,
            num_intervals: 4,
            total_insts: 400,
            bic_scores: vec![f64::NEG_INFINITY, -1.5, -0.25],
            assignments: vec![0, 1, 1, 1],
        }
    }

    fn sample_plan() -> SimulationPlan {
        SimulationPlan::new(
            vec![
                PlanPoint { start: 0, len: 100, weight: 0.125 },
                PlanPoint { start: 300, len: 100, weight: 0.875 },
            ],
            1000,
        )
        .unwrap()
    }

    fn sample_intervals() -> Vec<Interval> {
        vec![
            Interval { index: 0, start: 0, len: 10, vector: vec![0.5, 0.25, 0.0] },
            Interval { index: 1, start: 10, len: 12, vector: vec![-1.5, 3.0, 0.1] },
        ]
    }

    fn sample_profile() -> LoopProfile {
        LoopProfile {
            structures: vec![CyclicStructure {
                header: mlpa_isa::BlockId::new(7),
                coverage_insts: 900,
                back_edges: 9,
                entries: 1,
                min_depth: 0,
            }],
            total_insts: 1000,
        }
    }

    #[test]
    fn primitive_roundtrips() {
        let mut e = Enc::new();
        e.u(u64::MAX);
        e.z(42);
        e.b(true);
        e.f(0.1 + 0.2); // not representable exactly in decimal
        e.f(f64::NAN);
        e.s("two words");
        e.s("");
        let payload = e.finish();
        let mut d = Dec::new(&payload);
        assert_eq!(d.u().unwrap(), u64::MAX);
        assert_eq!(d.z().unwrap(), 42);
        assert!(d.b().unwrap());
        assert_eq!(d.f().unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        assert!(d.f().unwrap().is_nan());
        assert_eq!(d.s().unwrap(), "two words");
        assert_eq!(d.s().unwrap(), "");
        d.done().unwrap();
    }

    #[test]
    fn decode_rejects_truncation_and_garbage() {
        let mut e = Enc::new();
        sample_plan().encode(&mut e);
        let payload = e.finish();
        // Truncate at every prefix length that actually loses a token
        // byte (the payload ends with separator whitespace): decode
        // must error, never panic.
        for cut in 0..payload.trim_end().len() {
            let mut d = Dec::new(&payload[..cut]);
            let r = SimulationPlan::decode(&mut d).and_then(|_| d.done());
            assert!(r.is_err(), "truncation at {cut} accepted");
        }
        let mut d = Dec::new("not numbers at all");
        assert!(SimulationPlan::decode(&mut d).is_err());
    }

    #[test]
    fn artifact_roundtrips() {
        roundtrip(&sample_plan());
        roundtrip(&sample_metrics(5));
        roundtrip(&vec![sample_metrics(1), sample_metrics(2)]);
        roundtrip(&sample_intervals());
        roundtrip(&sample_profile());
        roundtrip(&sample_simpoints());
        roundtrip(&BoundaryArtifact {
            header: 7,
            has_prologue: true,
            intervals: sample_intervals(),
        });
        roundtrip(&FineOutcome {
            plan: sample_plan(),
            simpoints: sample_simpoints(),
            interval_len: 10_000,
        });
        let coasts = CoastsOutcome {
            plan: sample_plan(),
            simpoints: sample_simpoints(),
            intervals: sample_intervals(),
            profile: sample_profile(),
            header: mlpa_isa::BlockId::new(7),
            body_start: 1,
        };
        roundtrip(&coasts);
        roundtrip(&MultilevelOutcome {
            plan: sample_plan(),
            coasts: coasts.clone(),
            resampled: vec![ResampledPoint {
                coarse_start: 100,
                coarse_len: 400,
                fine: sample_simpoints(),
            }],
        });
        roundtrip(&ProfileShardArtifact {
            pieces: vec![
                RawInterval { start: 0, len: 9_500, acc: vec![12.0, -4.0, 9_500.0] },
                RawInterval { start: 10_000, len: 300, acc: vec![-300.0, 0.0, 300.0] },
            ],
            loops: ShardLoopProfile {
                stats: vec![
                    ShardLoopStats {
                        header: mlpa_isa::BlockId::new(3),
                        coverage_insts: 800,
                        back_edges: 7,
                        entries: 1,
                        min_depth: Some(0),
                    },
                    ShardLoopStats {
                        header: mlpa_isa::BlockId::new(9),
                        coverage_insts: 120,
                        back_edges: 4,
                        entries: 0,
                        min_depth: None,
                    },
                ],
                total_insts: 9_800,
            },
        });
        roundtrip(&BoundaryShardArtifact {
            pieces: vec![RawInterval { start: 40, len: 60, acc: vec![60.0, -60.0] }],
            first_header_pos: Some(40),
        });
        roundtrip(&BoundaryShardArtifact { pieces: vec![], first_header_pos: None });
        roundtrip(&ExecutionOutcome {
            estimate: MetricEstimate {
                cpi: 1.25,
                l1_hit_rate: 0.97,
                l2_hit_rate: 0.5,
                mispredict_rate: 0.02,
            },
            per_point: vec![sample_metrics(3)],
            cost: ExecutionCost { functional_insts: 900, detailed_insts: 100 },
        });
    }
}
