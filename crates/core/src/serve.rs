//! Sampling-as-a-service: the library behind the `mlpa-serve` daemon.
//!
//! The daemon turns the one-shot analysis pipeline into a long-running
//! server (ROADMAP item 1). It accepts analysis requests — benchmark
//! spec + machine config + method as a small JSON body on
//! `POST /analyze` — over the shared std-only HTTP layer
//! ([`mlpa_obs::http`]), runs them on a bounded worker pool, and
//! answers job polls with mlpa-status-style JSON.
//!
//! # Protocol
//!
//! * `POST /analyze` with `{"benchmark":"lucas","method":"multilevel",
//!   "config":"base","iters":2,"scale":0.5}` → `202` and
//!   `{"job":N,"poll":"/jobs/N"}`, or `503` + `Retry-After` when the
//!   queue is at its depth limit (admission control: requests are
//!   refused, memory never grows without bound), or `400` on an
//!   invalid request.
//! * `GET /jobs/N` → job state (schema [`SERVE_JOB_SCHEMA`]) plus the
//!   run phase / segment / progress gauges the status server exposes.
//! * `GET /jobs/N/result` → exactly the result body (schema
//!   [`SERVE_RESULT_SCHEMA`]); byte-identical for identical requests,
//!   whether computed, deduplicated, or served from the warm cache.
//! * `GET /metrics` → Prometheus text exposition of the live
//!   registries; `GET /healthz` → liveness.
//!
//! # Deduplication and caching
//!
//! Identical requests hit the [`ArtifactCache`] via a canonical
//! [`CacheKey`] over the compiled spec, method, machine config, and
//! every pipeline parameter the result depends on. *Concurrent*
//! identical requests additionally collapse in flight through
//! [`Singleflight`]: one computation, N waiters, every response
//! byte-identical (counted by `serve.inflight_dedup`).
//!
//! # Counters
//!
//! `serve.requests` (every `POST /analyze`), `serve.rejected`
//! (admission refusals), `serve.inflight_dedup` (requests served by a
//! concurrent leader's computation).

use std::collections::{HashMap, VecDeque};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use mlpa_obs::http::{self, Request, Response};
use mlpa_obs::json::{self, Value};
use mlpa_phase::simpoint::SimPointConfig;
use mlpa_sim::MachineConfig;
use mlpa_workloads::{suite, BenchmarkSpec, CompiledBenchmark};

use crate::artifact::{Artifact, Dec, Enc};
use crate::cache::{ArtifactCache, CacheKey, FlightRole, Singleflight};
use crate::coasts::{coasts_with, CoastsConfig};
use crate::estimate::{execute_plan_cached, panic_message, WarmupMode};
use crate::multilevel::{multilevel_with, MultilevelConfig};
use crate::pipeline::{simpoint_baseline_with, ProfilingContext, FINE_INTERVAL};

/// Schema tag on `GET /jobs/N` bodies.
pub const SERVE_JOB_SCHEMA: &str = "mlpa-serve-job-v1";
/// Schema tag on analysis result bodies.
pub const SERVE_RESULT_SCHEMA: &str = "mlpa-serve-result-v1";

/// Completed jobs retained for polling; the oldest beyond this are
/// dropped so a long-lived daemon's job table cannot grow forever.
const MAX_FINISHED_JOBS: usize = 256;

/// Which sampling method a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMethod {
    /// 10 M (scaled 10 k) fixed-interval SimPoint baseline.
    SimPoint,
    /// Coarse-grained earliest-instance sampling.
    Coasts,
    /// COASTS + fine re-sampling (the paper's contribution).
    Multilevel,
}

impl ServeMethod {
    fn from_str(s: &str) -> Option<ServeMethod> {
        match s {
            "simpoint" => Some(ServeMethod::SimPoint),
            "coasts" => Some(ServeMethod::Coasts),
            "multilevel" => Some(ServeMethod::Multilevel),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            ServeMethod::SimPoint => "simpoint",
            ServeMethod::Coasts => "coasts",
            ServeMethod::Multilevel => "multilevel",
        }
    }
}

/// Which Table I machine configuration to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeConfig {
    /// Config A ([`MachineConfig::table1_base`]).
    Base,
    /// Config B ([`MachineConfig::table1_sensitivity`]).
    Sensitivity,
}

impl ServeConfig {
    fn from_str(s: &str) -> Option<ServeConfig> {
        match s {
            "base" => Some(ServeConfig::Base),
            "sensitivity" => Some(ServeConfig::Sensitivity),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            ServeConfig::Base => "base",
            ServeConfig::Sensitivity => "sensitivity",
        }
    }

    fn machine(self) -> MachineConfig {
        match self {
            ServeConfig::Base => MachineConfig::table1_base(),
            ServeConfig::Sensitivity => MachineConfig::table1_sensitivity(),
        }
    }
}

/// One validated analysis request.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzeRequest {
    /// Suite benchmark name (e.g. `lucas`).
    pub benchmark: String,
    /// Iteration factor passed to [`suite::benchmark_with_iters`].
    pub iters: usize,
    /// Spec scale factor in `(0, 1]`.
    pub scale: f64,
    /// Sampling method.
    pub method: ServeMethod,
    /// Machine configuration.
    pub config: ServeConfig,
}

impl AnalyzeRequest {
    /// Parse and validate a `POST /analyze` JSON body. `iters`
    /// defaults to 2 and `scale` to 0.5 (the quick-experiment regime).
    ///
    /// # Errors
    ///
    /// Describes the offending field: unknown benchmark or method,
    /// out-of-range iters/scale, malformed JSON.
    pub fn from_json(body: &str) -> Result<AnalyzeRequest, String> {
        let v = json::parse(body).map_err(|e| format!("invalid JSON body: {e}"))?;
        let obj = v.as_obj().ok_or("request body must be a JSON object")?;
        for key in obj.keys() {
            if !matches!(key.as_str(), "benchmark" | "iters" | "scale" | "method" | "config") {
                return Err(format!("unknown field {key:?}"));
            }
        }
        let benchmark = v
            .get("benchmark")
            .and_then(Value::as_str)
            .ok_or("missing string field \"benchmark\"")?
            .to_string();
        let iters = match v.get("iters") {
            None => 2,
            Some(x) => {
                let f = x.as_f64().ok_or("\"iters\" must be a number")?;
                if f.fract() != 0.0 || !(1.0..=1000.0).contains(&f) {
                    return Err("\"iters\" must be an integer in [1, 1000]".into());
                }
                f as usize
            }
        };
        let scale = match v.get("scale") {
            None => 0.5,
            Some(x) => {
                let f = x.as_f64().ok_or("\"scale\" must be a number")?;
                if !(f > 0.0 && f <= 1.0) {
                    return Err("\"scale\" must be in (0, 1]".into());
                }
                f
            }
        };
        let method = match v.get("method") {
            None => ServeMethod::Multilevel,
            Some(x) => {
                let s = x.as_str().ok_or("\"method\" must be a string")?;
                ServeMethod::from_str(s).ok_or_else(|| {
                    format!("unknown method {s:?} (simpoint | coasts | multilevel)")
                })?
            }
        };
        let config = match v.get("config") {
            None => ServeConfig::Base,
            Some(x) => {
                let s = x.as_str().ok_or("\"config\" must be a string")?;
                ServeConfig::from_str(s)
                    .ok_or_else(|| format!("unknown config {s:?} (base | sensitivity)"))?
            }
        };
        let req = AnalyzeRequest { benchmark, iters, scale, method, config };
        req.spec()?; // reject unknown benchmarks at admission time
        Ok(req)
    }

    fn spec(&self) -> Result<BenchmarkSpec, String> {
        suite::benchmark_with_iters(&self.benchmark, self.iters)
            .map(|s| s.scaled(self.scale))
            .ok_or_else(|| format!("unknown benchmark {:?}", self.benchmark))
    }

    /// The canonical response-level cache key: the compiled spec plus
    /// every pipeline parameter the result depends on, so identical
    /// requests are cache hits and any default change invalidates.
    pub fn cache_key(&self) -> Result<CacheKey, String> {
        let spec = self.spec()?;
        Ok(CacheKey::new()
            .field("spec", &spec)
            .field("method", &self.method)
            .field("config", &self.config.machine())
            .field("coasts", &CoastsConfig::default())
            .field("multilevel", &MultilevelConfig::default())
            .field("fine", &SimPointConfig::fine_10m())
            .field("fine_interval", &FINE_INTERVAL)
            .field("warmup", &WarmupMode::Warmed))
    }
}

/// The cached response body for one analysis request.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ServedAnalysis {
    body: String,
}

impl Artifact for ServedAnalysis {
    const KIND: &'static str = "serve-result";

    fn encode(&self, enc: &mut Enc) {
        enc.s(&self.body);
    }

    fn decode(dec: &mut Dec) -> Result<Self, String> {
        Ok(ServedAnalysis { body: dec.s()? })
    }
}

/// Run the full pipeline for one request and render the canonical
/// result body. Pipeline-level artifacts (profiles, selections, plan
/// executions) go through `cache` exactly as in the batch harness, so
/// a request that shares work with a previous one pays only the delta.
///
/// # Errors
///
/// Propagates compilation and selection errors.
pub fn analyze(req: &AnalyzeRequest, cache: Option<Arc<ArtifactCache>>) -> Result<String, String> {
    let _span = mlpa_obs::span_labeled("serve.analyze", &req.benchmark);
    let spec = req.spec()?;
    let cb = CompiledBenchmark::compile(&spec)?;
    let coasts_cfg = CoastsConfig::default();
    let mut ctx = ProfilingContext::new(&cb, coasts_cfg.projection, FINE_INTERVAL);
    if let Some(c) = &cache {
        ctx.set_cache(Arc::clone(c));
    }
    let plan = match req.method {
        ServeMethod::SimPoint => {
            simpoint_baseline_with(&mut ctx, &SimPointConfig::fine_10m())?.plan
        }
        ServeMethod::Coasts => coasts_with(&mut ctx, &coasts_cfg)?.plan,
        ServeMethod::Multilevel => multilevel_with(&mut ctx, &MultilevelConfig::default())?.plan,
    };
    let machine = req.config.machine();
    let out = execute_plan_cached(cache.as_deref(), &cb, &machine, &plan, WarmupMode::Warmed, 1);
    let e = out.estimate;
    Ok(format!(
        "{{\"schema\":\"{SERVE_RESULT_SCHEMA}\",\"benchmark\":\"{}\",\"method\":\"{}\",\
         \"config\":\"{}\",\"iters\":{},\"scale\":{:?},\"points\":{},\"total_insts\":{},\
         \"detail_fraction\":{:?},\"estimate\":{{\"cpi\":{:?},\"l1_hit_rate\":{:?},\
         \"l2_hit_rate\":{:?},\"mispredict_rate\":{:?}}}}}",
        json::escape(&req.benchmark),
        req.method.name(),
        req.config.name(),
        req.iters,
        req.scale,
        plan.len(),
        plan.total_insts(),
        plan.detail_fraction(),
        e.cpi,
        e.l1_hit_rate,
        e.l2_hit_rate,
        e.mispredict_rate,
    ))
}

/// Daemon settings.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen port (0 = ephemeral; the bound address comes back from
    /// [`Daemon::addr`]).
    pub port: u16,
    /// Worker threads executing analysis jobs.
    pub workers: usize,
    /// Maximum *queued* (accepted, not yet running) jobs; beyond this
    /// `POST /analyze` answers `503` + `Retry-After`.
    pub queue_depth: usize,
    /// Artifact-cache directory (None = no cache).
    pub cache_dir: Option<PathBuf>,
    /// Cache byte budget with LRU eviction (requires `cache_dir`).
    pub cache_budget: Option<u64>,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions { port: 0, workers: 2, queue_depth: 16, cache_dir: None, cache_budget: None }
    }
}

#[derive(Debug)]
enum JobState {
    Queued,
    Running,
    Done(String),
    Failed(String),
}

impl JobState {
    fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
        }
    }
}

struct JobRecord {
    request: AnalyzeRequest,
    state: JobState,
}

#[derive(Default)]
struct Jobs {
    next_id: u64,
    table: HashMap<u64, JobRecord>,
    queue: VecDeque<u64>,
    finished: VecDeque<u64>,
}

type Executor = dyn Fn(&AnalyzeRequest) -> Result<String, String> + Send + Sync;

struct Inner {
    queue_depth: usize,
    jobs: Mutex<Jobs>,
    work_cv: Condvar,
    stop: AtomicBool,
    flight: Singleflight<Result<String, String>>,
    cache: Option<Arc<ArtifactCache>>,
    executor: Box<Executor>,
}

/// A running daemon: HTTP front end plus the bounded worker pool.
pub struct Daemon {
    inner: Arc<Inner>,
    server: http::Server,
    workers: Vec<JoinHandle<()>>,
}

impl Daemon {
    /// Open the cache (applying the budget), start the worker pool,
    /// and bind the HTTP server.
    ///
    /// # Errors
    ///
    /// Propagates cache-open and bind failures.
    pub fn start(opts: ServeOptions) -> Result<Daemon, String> {
        let cache = match &opts.cache_dir {
            Some(dir) => {
                let mut c = ArtifactCache::open(dir)?;
                c.set_budget(opts.cache_budget)?;
                Some(Arc::new(c))
            }
            None => None,
        };
        let exec_cache = cache.clone();
        Daemon::start_with_executor(
            opts,
            cache,
            Box::new(move |req| analyze(req, exec_cache.clone())),
        )
    }

    /// [`Daemon::start`] with an injected job executor — the seam the
    /// admission-control and dedup tests use to make worker timing
    /// deterministic. The response-level cache and singleflight wrap
    /// the executor here, identically for tests and production.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start_with_executor(
        opts: ServeOptions,
        cache: Option<Arc<ArtifactCache>>,
        executor: Box<Executor>,
    ) -> Result<Daemon, String> {
        let inner = Arc::new(Inner {
            queue_depth: opts.queue_depth.max(1),
            jobs: Mutex::new(Jobs::default()),
            work_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            flight: Singleflight::new(),
            cache,
            executor,
        });
        let workers = (0..opts.workers.max(1))
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    .spawn(move || worker_loop(&inner, w))
                    .map_err(|e| format!("spawning worker {w}: {e}"))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let handler = Arc::clone(&inner);
        let server = http::serve(opts.port, "mlpa-serve", move |req| handle(&handler, req))
            .map_err(|e| format!("binding port {}: {e}", opts.port))?;
        Ok(Daemon { inner, server, workers })
    }

    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// Stop accepting, drain the worker pool (in-flight jobs finish),
    /// and join every thread.
    pub fn stop(self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        self.inner.work_cv.notify_all();
        for handle in self.workers {
            let _ = handle.join();
        }
        self.server.stop();
    }
}

fn worker_loop(inner: &Arc<Inner>, index: usize) {
    let mut guard = mlpa_obs::worker("serve", index);
    loop {
        let job_id = {
            let mut jobs = inner.jobs.lock().expect("serve jobs poisoned");
            loop {
                if inner.stop.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(id) = jobs.queue.pop_front() {
                    break id;
                }
                jobs = inner.work_cv.wait(jobs).expect("serve jobs poisoned");
            }
        };
        guard.busy(|| run_job(inner, job_id));
    }
}

fn run_job(inner: &Inner, id: u64) {
    let request = {
        let mut jobs = inner.jobs.lock().expect("serve jobs poisoned");
        let Some(rec) = jobs.table.get_mut(&id) else { return };
        rec.state = JobState::Running;
        rec.request.clone()
    };

    let outcome = match request.cache_key() {
        Err(e) => Err(e),
        Ok(key) => {
            // Singleflight over (cache lookup + compute + store): the
            // lookup runs inside the flight so concurrent identical
            // requests dedupe even when the cache is cold, and the key
            // is retired only after the result is stored.
            let flight_key = format!("{}|{}", ServedAnalysis::KIND, key.material());
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                inner.flight.run(&flight_key, || {
                    if let Some(c) = &inner.cache {
                        if let Some(hit) = c.get::<ServedAnalysis>(&key) {
                            return Ok(hit.body);
                        }
                    }
                    let body = (inner.executor)(&request)?;
                    if let Some(c) = &inner.cache {
                        c.put(&key, &ServedAnalysis { body: body.clone() });
                    }
                    Ok(body)
                })
            }));
            match caught {
                Ok((result, role)) => {
                    if role == FlightRole::Follower {
                        mlpa_obs::add("serve.inflight_dedup", 1);
                    }
                    result
                }
                Err(payload) => Err(panic_message(payload.as_ref())),
            }
        }
    };

    let mut jobs = inner.jobs.lock().expect("serve jobs poisoned");
    if let Some(rec) = jobs.table.get_mut(&id) {
        rec.state = match outcome {
            Ok(body) => JobState::Done(body),
            Err(e) => JobState::Failed(e),
        };
    }
    jobs.finished.push_back(id);
    while jobs.finished.len() > MAX_FINISHED_JOBS {
        if let Some(old) = jobs.finished.pop_front() {
            jobs.table.remove(&old);
        }
    }
}

fn handle(inner: &Arc<Inner>, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/analyze") => post_analyze(inner, &req.body),
        ("GET", "/healthz") => Response::ok("text/plain", "ok\n"),
        ("GET", "/metrics") => Response::ok(
            "text/plain; version=0.0.4; charset=utf-8",
            mlpa_obs::promtext::render_current(),
        ),
        ("GET", path) if path.starts_with("/jobs/") => get_job(inner, path),
        _ => Response::new("404 Not Found", "text/plain", "unknown path\n"),
    }
}

fn error_json(message: &str) -> String {
    format!("{{\"error\":\"{}\"}}", json::escape(message))
}

fn post_analyze(inner: &Arc<Inner>, body: &str) -> Response {
    mlpa_obs::add("serve.requests", 1);
    let request = match AnalyzeRequest::from_json(body) {
        Ok(r) => r,
        Err(e) => return Response::new("400 Bad Request", "application/json", error_json(&e)),
    };
    let id = {
        let mut jobs = inner.jobs.lock().expect("serve jobs poisoned");
        if jobs.queue.len() >= inner.queue_depth {
            mlpa_obs::add("serve.rejected", 1);
            return Response::new(
                "503 Service Unavailable",
                "application/json",
                error_json("queue full, retry later"),
            )
            .header("Retry-After", "1");
        }
        jobs.next_id += 1;
        let id = jobs.next_id;
        jobs.table.insert(id, JobRecord { request, state: JobState::Queued });
        jobs.queue.push_back(id);
        id
    };
    inner.work_cv.notify_one();
    Response::new(
        "202 Accepted",
        "application/json",
        format!("{{\"job\":{id},\"poll\":\"/jobs/{id}\"}}"),
    )
}

fn get_job(inner: &Arc<Inner>, path: &str) -> Response {
    let rest = &path["/jobs/".len()..];
    let (id_str, want_result) = match rest.strip_suffix("/result") {
        Some(s) => (s, true),
        None => (rest, false),
    };
    let Ok(id) = id_str.parse::<u64>() else {
        return Response::new("404 Not Found", "application/json", error_json("bad job id"));
    };
    let jobs = inner.jobs.lock().expect("serve jobs poisoned");
    let Some(rec) = jobs.table.get(&id) else {
        return Response::new("404 Not Found", "application/json", error_json("unknown job"));
    };
    if want_result {
        return match &rec.state {
            JobState::Done(body) => Response::json(body.clone()),
            JobState::Failed(e) => {
                Response::new("500 Internal Server Error", "application/json", error_json(e))
            }
            JobState::Queued | JobState::Running => Response::new(
                "409 Conflict",
                "application/json",
                error_json("job not finished; poll the status endpoint"),
            ),
        };
    }
    // mlpa-status-style body: job state plus the live phase / segment /
    // progress gauges, so a poller sees pipeline progress, not just
    // "running".
    let gauges = mlpa_obs::gauges_snapshot();
    let gauge = |name: &str| gauges.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v);
    let gauge_body = gauges
        .iter()
        .map(|(name, v)| format!("\"{}\":{v}", json::escape(name)))
        .collect::<Vec<_>>()
        .join(",");
    let error = match &rec.state {
        JobState::Failed(e) => format!(",\"error\":\"{}\"", json::escape(e)),
        _ => String::new(),
    };
    Response::json(format!(
        "{{\"schema\":\"{SERVE_JOB_SCHEMA}\",\"job\":{id},\"state\":\"{}\",\
         \"benchmark\":\"{}\",\"method\":\"{}\",\"phase\":\"{}\",\"segment\":{},\
         \"benchmarks_done\":{},\"benchmarks_total\":{},\"queued\":{}{error},\
         \"gauges\":{{{gauge_body}}}}}",
        rec.state.name(),
        json::escape(&rec.request.benchmark),
        rec.request.method.name(),
        json::escape(&mlpa_obs::telemetry::run_phase()),
        gauge("core.shard.segment"),
        gauge("bench.done"),
        gauge("bench.total"),
        jobs.queue.len(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::sync::atomic::AtomicU64;
    use std::time::{Duration, Instant};

    fn tmp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("mlpa-serve-test-{tag}-{}-{seq}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn post_analyze_json(addr: SocketAddr, body: &str) -> (u16, String) {
        http::post(addr, "/analyze", "application/json", body).expect("POST /analyze")
    }

    fn job_id(body: &str) -> u64 {
        json::parse(body).expect("202 body").get("job").and_then(Value::as_f64).expect("job id")
            as u64
    }

    fn wait_for_state(addr: SocketAddr, id: u64, want: &str) -> Value {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let (code, body) = http::get(addr, &format!("/jobs/{id}")).expect("GET /jobs");
            assert_eq!(code, 200, "job poll failed: {body}");
            let v = json::parse(&body).expect("job JSON");
            let state = v.get("state").and_then(Value::as_str).unwrap_or("").to_string();
            if state == want {
                return v;
            }
            assert!(
                !matches!(state.as_str(), "done" | "failed"),
                "job {id} settled as {state:?} while waiting for {want:?}: {body}"
            );
            assert!(Instant::now() < deadline, "timed out waiting for job {id} = {want}");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// An executor that signals entry and blocks until released, making
    /// worker timing deterministic for the admission/dedup tests.
    struct Gate {
        entered: Mutex<u64>,
        released: Mutex<bool>,
        cv: Condvar,
    }

    impl Gate {
        fn new() -> Arc<Gate> {
            Arc::new(Gate {
                entered: Mutex::new(0),
                released: Mutex::new(false),
                cv: Condvar::new(),
            })
        }

        fn enter_and_wait(&self) {
            *self.entered.lock().unwrap() += 1;
            self.cv.notify_all();
            let mut released = self.released.lock().unwrap();
            while !*released {
                released = self.cv.wait(released).unwrap();
            }
        }

        fn wait_entered(&self, want: u64) {
            let mut entered = self.entered.lock().unwrap();
            let deadline = Instant::now() + Duration::from_secs(10);
            while *entered < want {
                let (g, timeout) =
                    self.cv.wait_timeout(entered, Duration::from_millis(100)).unwrap();
                entered = g;
                assert!(
                    !timeout.timed_out() || Instant::now() < deadline,
                    "timed out waiting for {want} executor entries (saw {})",
                    *entered
                );
            }
        }

        fn release(&self) {
            *self.released.lock().unwrap() = true;
            self.cv.notify_all();
        }
    }

    const REQ_A: &str = r#"{"benchmark":"lucas","method":"multilevel","config":"base"}"#;
    const REQ_B: &str = r#"{"benchmark":"lucas","method":"multilevel","config":"sensitivity"}"#;

    #[test]
    fn request_parsing_validates_and_defaults() {
        let req = AnalyzeRequest::from_json(REQ_A).expect("valid request");
        assert_eq!(req.benchmark, "lucas");
        assert_eq!(req.iters, 2);
        assert_eq!(req.scale, 0.5);
        assert_eq!(req.method, ServeMethod::Multilevel);
        assert_eq!(req.config, ServeConfig::Base);

        let full = AnalyzeRequest::from_json(
            r#"{"benchmark":"gcc","iters":3,"scale":0.25,"method":"coasts","config":"sensitivity"}"#,
        )
        .expect("explicit fields");
        assert_eq!(
            full,
            AnalyzeRequest {
                benchmark: "gcc".into(),
                iters: 3,
                scale: 0.25,
                method: ServeMethod::Coasts,
                config: ServeConfig::Sensitivity,
            }
        );

        for bad in [
            "",
            "not json",
            "[]",
            "{}",
            r#"{"benchmark":"no-such-benchmark"}"#,
            r#"{"benchmark":"lucas","method":"magic"}"#,
            r#"{"benchmark":"lucas","config":"tiny"}"#,
            r#"{"benchmark":"lucas","scale":0}"#,
            r#"{"benchmark":"lucas","scale":1.5}"#,
            r#"{"benchmark":"lucas","iters":0}"#,
            r#"{"benchmark":"lucas","iters":2.5}"#,
            r#"{"benchmark":"lucas","surprise":1}"#,
        ] {
            assert!(AnalyzeRequest::from_json(bad).is_err(), "accepted bad request {bad:?}");
        }
    }

    #[test]
    fn admission_control_rejects_beyond_queue_depth_with_retry_after() {
        let _g = crate::testobs::counter_lock();
        let gate = Gate::new();
        let exec_gate = Arc::clone(&gate);
        let daemon = Daemon::start_with_executor(
            ServeOptions { workers: 1, queue_depth: 1, ..ServeOptions::default() },
            None,
            Box::new(move |_| {
                exec_gate.enter_and_wait();
                Ok("done".into())
            }),
        )
        .expect("start daemon");
        let addr = daemon.addr();

        // Job 1 occupies the single worker; wait until it is truly
        // inside the executor so the queue is empty again.
        let (code, body) = post_analyze_json(addr, REQ_A);
        assert_eq!(code, 202, "{body}");
        let first = job_id(&body);
        gate.wait_entered(1);

        // Job 2 fills the queue (distinct request so it cannot dedup).
        let (code, body) = post_analyze_json(addr, REQ_B);
        assert_eq!(code, 202, "{body}");

        // Job 3 must be refused — and with the full raw response, so
        // the Retry-After header is visible.
        let rejected = mlpa_obs::counter_value("serve.rejected");
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        let payload = REQ_A;
        write!(
            stream,
            "POST /analyze HTTP/1.1\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{payload}",
            payload.len()
        )
        .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 503"), "expected 503, got: {raw}");
        assert!(raw.contains("Retry-After: 1"), "missing Retry-After: {raw}");
        assert_eq!(mlpa_obs::counter_value("serve.rejected"), rejected + 1);

        gate.release();
        wait_for_state(addr, first, "done");
        daemon.stop();
    }

    #[test]
    fn concurrent_identical_requests_compute_once_and_match_bytes() {
        let _g = crate::testobs::counter_lock();
        let gate = Gate::new();
        let exec_gate = Arc::clone(&gate);
        let executions = Arc::new(AtomicU64::new(0));
        let exec_count = Arc::clone(&executions);
        let cache_dir = tmp_dir("dedup-cache");
        let daemon = Daemon::start_with_executor(
            ServeOptions {
                workers: 2,
                queue_depth: 8,
                cache_dir: Some(cache_dir.clone()),
                ..ServeOptions::default()
            },
            Some(Arc::new(ArtifactCache::open(&cache_dir).unwrap())),
            Box::new(move |req| {
                exec_count.fetch_add(1, Ordering::SeqCst);
                exec_gate.enter_and_wait();
                Ok(format!("{{\"result\":\"{}\"}}", req.benchmark))
            }),
        )
        .expect("start daemon");
        let addr = daemon.addr();
        let dedup_before = mlpa_obs::counter_value("serve.inflight_dedup");

        let (code, body) = post_analyze_json(addr, REQ_A);
        assert_eq!(code, 202, "{body}");
        let first = job_id(&body);
        // The leader is inside the (blocked) executor before the
        // identical request arrives, so the second job must join the
        // flight rather than start a second computation.
        gate.wait_entered(1);
        let (code, body) = post_analyze_json(addr, REQ_A);
        assert_eq!(code, 202, "{body}");
        let second = job_id(&body);
        wait_for_state(addr, second, "running");

        gate.release();
        wait_for_state(addr, first, "done");
        wait_for_state(addr, second, "done");

        assert_eq!(executions.load(Ordering::SeqCst), 1, "exactly one pipeline execution");
        assert_eq!(
            mlpa_obs::counter_value("serve.inflight_dedup"),
            dedup_before + 1,
            "the deduplicated request must be counted"
        );
        let (code, result1) = http::get(addr, &format!("/jobs/{first}/result")).unwrap();
        assert_eq!(code, 200);
        let (code, result2) = http::get(addr, &format!("/jobs/{second}/result")).unwrap();
        assert_eq!(code, 200);
        assert_eq!(result1, result2, "deduplicated responses must be byte-identical");

        daemon.stop();
        let _ = std::fs::remove_dir_all(&cache_dir);
    }

    #[test]
    fn identical_request_after_restart_is_a_warm_cache_hit() {
        // Uses the cache, so its counter bumps must not land inside
        // another test's measurement window.
        let _g = crate::testobs::counter_lock();
        let cache_dir = tmp_dir("restart-cache");
        let build = |marker: &'static str, executions: Arc<AtomicU64>| {
            let dir = cache_dir.clone();
            Daemon::start_with_executor(
                ServeOptions {
                    workers: 1,
                    queue_depth: 4,
                    cache_dir: Some(dir.clone()),
                    ..ServeOptions::default()
                },
                Some(Arc::new(ArtifactCache::open(&dir).unwrap())),
                Box::new(move |req| {
                    executions.fetch_add(1, Ordering::SeqCst);
                    Ok(format!("{{\"result\":\"{}:{marker}\"}}", req.benchmark))
                }),
            )
            .expect("start daemon")
        };

        let cold_execs = Arc::new(AtomicU64::new(0));
        let daemon = build("cold", Arc::clone(&cold_execs));
        let addr = daemon.addr();
        let (code, body) = post_analyze_json(addr, REQ_A);
        assert_eq!(code, 202, "{body}");
        let id = job_id(&body);
        wait_for_state(addr, id, "done");
        let (_, cold_result) = http::get(addr, &format!("/jobs/{id}/result")).unwrap();
        assert_eq!(cold_execs.load(Ordering::SeqCst), 1);
        daemon.stop();

        // Restart over the same cache directory: the identical request
        // must be served from the store, bypassing the executor — and
        // byte-identical to the cold result even though the warm
        // executor would have produced a different body.
        let warm_execs = Arc::new(AtomicU64::new(0));
        let daemon = build("warm", Arc::clone(&warm_execs));
        let addr = daemon.addr();
        let (code, body) = post_analyze_json(addr, REQ_A);
        assert_eq!(code, 202, "{body}");
        let id = job_id(&body);
        wait_for_state(addr, id, "done");
        let (_, warm_result) = http::get(addr, &format!("/jobs/{id}/result")).unwrap();
        assert_eq!(warm_execs.load(Ordering::SeqCst), 0, "warm hit must not re-execute");
        assert_eq!(cold_result, warm_result, "warm response must be byte-identical");
        daemon.stop();
        let _ = std::fs::remove_dir_all(&cache_dir);
    }

    #[test]
    fn unknown_jobs_and_paths_answer_cleanly() {
        let daemon = Daemon::start_with_executor(
            ServeOptions::default(),
            None,
            Box::new(|_| Ok("{}".into())),
        )
        .expect("start daemon");
        let addr = daemon.addr();
        assert_eq!(http::get(addr, "/healthz").unwrap().0, 200);
        assert_eq!(http::get(addr, "/jobs/999").unwrap().0, 404);
        assert_eq!(http::get(addr, "/jobs/notanumber").unwrap().0, 404);
        assert_eq!(http::get(addr, "/nope").unwrap().0, 404);
        let (code, _) = post_analyze_json(addr, "{\"benchmark\":\"nope\"}");
        assert_eq!(code, 400);
        daemon.stop();
    }
}
