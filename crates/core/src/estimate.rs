//! Plan execution: fast-forward to each simulation point, simulate it
//! in detail, and combine the weighted per-point metrics into a
//! whole-program estimate.
//!
//! Execution is available serially ([`execute_plan`]) or across a
//! bounded worker pool ([`execute_plan_jobs`]). Both paths produce
//! bit-identical [`ExecutionOutcome`]s: plan points are independent
//! regions of a deterministic trace, and warm microarchitectural state
//! is defined as *functional warming of the whole prefix* — a property
//! each worker can reconstruct on its own from the start of the trace.

use crate::cache::{ArtifactCache, CacheKey};
use crate::plan::SimulationPlan;
use mlpa_sim::functional::Warming;
use mlpa_sim::{
    BranchUnit, DetailedSim, FunctionalSim, MachineConfig, MemoryHierarchy, MetricEstimate,
    SimMetrics,
};
use mlpa_workloads::{CompiledBenchmark, WorkloadStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Microarchitectural-state policy at each simulation point.
///
/// The default is [`WarmupMode::Warmed`]. At this repo's 1000×
/// instruction scale-down the caches keep their Table I sizes, so a
/// cold-started sample pays its compulsory misses over 1000× fewer
/// instructions than the paper's setup — cold-start bias is amplified
/// three orders of magnitude and would swamp every accuracy comparison.
/// Warming restores the paper's regime (where a 10 M-instruction sample
/// amortises cold misses to the ~1 % level). [`WarmupMode::Cold`]
/// remains available; the `ablation_warmup` bench uses it to show the
/// Table II pattern in amplified form — fine-grained sampling degrades
/// drastically without warm state while coarse-grained sampling barely
/// notices, which is exactly why the paper's SimPoint column shows L2
/// deviations up to 23 %.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WarmupMode {
    /// Cold caches and predictor at every point — SimpleScalar's raw
    /// `-fastfwd` behaviour.
    Cold,
    /// Functionally warm caches and predictor over each point's entire
    /// prefix (checkpoint/warming methodology). The warm state a point
    /// sees is a pure function of its start offset, so points can be
    /// simulated independently — and therefore in parallel — while
    /// staying bit-identical to serial execution.
    #[default]
    Warmed,
}

/// What executing a plan cost, in actually-executed instructions.
///
/// Parallel execution reports the *serial-equivalent* accounting (the
/// gaps between consecutive points), not the per-worker prefix replays,
/// so outcomes compare across job counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutionCost {
    /// Instructions fast-forwarded functionally.
    pub functional_insts: u64,
    /// Instructions simulated in detail.
    pub detailed_insts: u64,
}

/// Result of executing a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionOutcome {
    /// The whole-program estimate (weighted combination).
    pub estimate: MetricEstimate,
    /// Per-point raw metrics, in plan order.
    pub per_point: Vec<SimMetrics>,
    /// Cost accounting.
    pub cost: ExecutionCost,
}

/// Execute `plan` on `config` serially, producing the sampled estimate.
///
/// With [`WarmupMode::Cold`] every point starts from a cold simulator
/// (separate `sim-outorder -fastfwd` invocations, as the paper's
/// baseline); with [`WarmupMode::Warmed`] the caches and predictor are
/// functionally warmed over each point's prefix before detailed
/// simulation begins.
///
/// Equivalent to [`execute_plan_jobs`] with `jobs = 1`.
///
/// # Example
///
/// ```
/// use mlpa_core::estimate::{execute_plan, WarmupMode};
/// use mlpa_core::plan::{PlanPoint, SimulationPlan};
/// use mlpa_sim::MachineConfig;
/// use mlpa_workloads::{spec::BenchmarkSpec, CompiledBenchmark};
///
/// let cb = CompiledBenchmark::compile(&BenchmarkSpec::default())?;
/// let plan = SimulationPlan::new(
///     vec![PlanPoint { start: 0, len: 20_000, weight: 1.0 }],
///     500_000,
/// )?;
/// let out = execute_plan(&cb, &MachineConfig::table1_base(), &plan, WarmupMode::Cold);
/// assert!(out.estimate.cpi > 0.0);
/// # Ok::<(), String>(())
/// ```
pub fn execute_plan(
    cb: &CompiledBenchmark,
    config: &MachineConfig,
    plan: &SimulationPlan,
    mode: WarmupMode,
) -> ExecutionOutcome {
    execute_plan_jobs(cb, config, plan, mode, 1)
}

/// Execute `plan` across up to `jobs` worker threads.
///
/// `jobs = 0` uses every available core, `jobs = 1` runs serially on
/// the calling thread; the pool never exceeds the number of plan
/// points. The outcome — estimate, per-point metrics, and cost — is
/// bit-identical for every job count: each worker rebuilds its point's
/// trace position (and, in [`WarmupMode::Warmed`], its functional warm
/// state) independently from the start of the deterministic trace, and
/// per-point results are recombined in plan order.
///
/// Plan points produced by this repo's selectors start on profiled
/// interval boundaries, which is what makes a point's stream position
/// reconstructible from its start offset alone.
pub fn execute_plan_jobs(
    cb: &CompiledBenchmark,
    config: &MachineConfig,
    plan: &SimulationPlan,
    mode: WarmupMode,
    jobs: usize,
) -> ExecutionOutcome {
    let _span = mlpa_obs::span("core.plan.execute");
    let workers = effective_jobs(jobs).min(plan.len());
    let raw = if workers <= 1 {
        execute_points_serial(cb, config, plan, mode)
    } else {
        execute_points_parallel(cb, config, plan, mode, workers)
    };
    let out = combine(plan, raw);
    if mlpa_obs::is_enabled() {
        mlpa_obs::add("core.plan.points", plan.len() as u64);
        mlpa_obs::add("core.plan.functional_insts", out.cost.functional_insts);
        mlpa_obs::add("core.plan.detailed_insts", out.cost.detailed_insts);
    }
    out
}

/// Resolve a `jobs` request: `0` means all available cores.
pub fn effective_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        jobs
    }
}

/// Per-point raw result: the stream position the detailed region
/// started at, and its metrics.
type PointRun = (u64, SimMetrics);

fn execute_points_serial(
    cb: &CompiledBenchmark,
    config: &MachineConfig,
    plan: &SimulationPlan,
    mode: WarmupMode,
) -> Vec<PointRun> {
    let mut stream = WorkloadStream::new(cb);
    let mut func = FunctionalSim::new(cb.program());
    let mut runs = Vec::with_capacity(plan.len());
    let mut pos = 0u64;
    // A single-worker guard so serial runs still report utilization.
    let mut worker = mlpa_obs::worker("plan", 0);
    // One job in flight for the whole serial traversal.
    mlpa_obs::gauge_set("core.plan.inflight", 1);

    // Warm mode keeps one continuously-warmed state for the whole
    // traversal; each point receives a snapshot of it.
    let mut warm = matches!(mode, WarmupMode::Warmed)
        .then(|| (MemoryHierarchy::new(config), BranchUnit::new(&config.predictor)));

    for (i, p) in plan.points().iter().enumerate() {
        let _span = mlpa_obs::span_labeled("core.plan.point", &format!("point {i}"));
        let run = worker.busy(|| {
            let skip = p.start.saturating_sub(pos);
            pos += match &mut warm {
                Some((hier, bu)) => {
                    func.fast_forward(&mut stream, skip, &mut (), Warming::Warm, Some((hier, bu)))
                }
                None => func.fast_forward(&mut stream, skip, &mut (), Warming::None, None),
            };
            let start_pos = pos;

            let metrics = match &mut warm {
                Some((hier, bu)) => {
                    // The detailed simulator runs on a fork of the stream
                    // with a snapshot of the warm state, while the primary
                    // stream warms functionally *through* the point region —
                    // so the next point's prefix state is a pure functional
                    // warm of [0, start), exactly what a parallel worker
                    // reconstructs.
                    let mut fork = stream.clone();
                    let mut sim = DetailedSim::with_warm_state(
                        *config,
                        cb.program(),
                        hier.clone(),
                        bu.clone(),
                    );
                    let m = sim.simulate(&mut fork, p.len);
                    let advanced = func.fast_forward(
                        &mut stream,
                        m.instructions,
                        &mut (),
                        Warming::Warm,
                        Some((hier, bu)),
                    );
                    debug_assert_eq!(advanced, m.instructions, "fork and primary stream diverged");
                    m
                }
                None => {
                    let mut sim = DetailedSim::new(*config, cb.program());
                    sim.simulate(&mut stream, p.len)
                }
            };
            pos += metrics.instructions;
            (start_pos, metrics)
        });
        runs.push(run);
    }
    mlpa_obs::gauge_set("core.plan.inflight", 0);
    runs
}

fn execute_points_parallel(
    cb: &CompiledBenchmark,
    config: &MachineConfig,
    plan: &SimulationPlan,
    mode: WarmupMode,
    workers: usize,
) -> Vec<PointRun> {
    let points = plan.points();
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<PointRun, String>)>();

    std::thread::scope(|s| {
        for w in 0..workers {
            let tx = tx.clone();
            let next = &next;
            s.spawn(move || {
                let mut guard = mlpa_obs::worker("plan", w);
                // Claim points dynamically: early points have short
                // prefixes, late points long ones, so static chunking
                // would load-imbalance badly.
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(p) = points.get(i) else { break };
                    let span = mlpa_obs::span_labeled("core.plan.point", &format!("point {i}"));
                    let span_id = span.id();
                    // Single atomic op on the gauge itself: a separate
                    // counter plus gauge_set can interleave so a stale
                    // larger value is stored last and the level sticks
                    // nonzero after the parallel section drains.
                    mlpa_obs::gauge_add("core.plan.inflight", 1);
                    // A panicking job must not be swallowed into the
                    // joined results: capture the payload and report it
                    // with the job's identity attached.
                    let run = guard.busy(|| {
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            simulate_point_standalone(cb, config, p.start, p.len, mode)
                        }))
                    });
                    mlpa_obs::gauge_add("core.plan.inflight", -1);
                    drop(span);
                    let run = run.map_err(|payload| {
                        // `&*payload`, not `&payload`: a `Box<dyn Any>`
                        // is itself `Any`, so the un-derefed reference
                        // would downcast against the box, never the
                        // payload inside it.
                        let msg = panic_message(&*payload);
                        if span_id != 0 {
                            format!("{msg} [obs span {span_id}]")
                        } else {
                            msg
                        }
                    });
                    if tx.send((i, run)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);

        let mut runs: Vec<Option<PointRun>> = vec![None; points.len()];
        let mut failure: Option<(usize, String)> = None;
        for (i, run) in rx {
            match run {
                Ok(r) => runs[i] = Some(r),
                // Report the lowest-index failure so the error is
                // deterministic regardless of worker interleaving.
                Err(msg) => {
                    if failure.as_ref().is_none_or(|(j, _)| i < *j) {
                        failure = Some((i, msg));
                    }
                }
            }
        }
        if let Some((i, msg)) = failure {
            let p = &points[i];
            panic!("plan point {i} (start={}, len={}) panicked: {msg}", p.start, p.len);
        }
        runs.into_iter().map(|r| r.expect("worker pool completed every claimed point")).collect()
    })
}

/// Render a `catch_unwind` payload (the common `&str`/`String` cases).
///
/// Shared by every worker pool that must attach a job label to a
/// propagated panic (plan execution here, the experiment suite in
/// `mlpa-bench`). Pass `&*payload`, not `&payload`: a `Box<dyn Any>` is
/// itself `Any`.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Simulate one plan point from a cold start of the trace: fast-forward
/// (warming if requested) over the prefix, then run the detailed region.
fn simulate_point_standalone(
    cb: &CompiledBenchmark,
    config: &MachineConfig,
    start: u64,
    len: u64,
    mode: WarmupMode,
) -> PointRun {
    let mut stream = WorkloadStream::new(cb);
    let mut func = FunctionalSim::new(cb.program());
    match mode {
        WarmupMode::Cold => {
            let prefix = func.fast_forward(&mut stream, start, &mut (), Warming::None, None);
            let mut sim = DetailedSim::new(*config, cb.program());
            (prefix, sim.simulate(&mut stream, len))
        }
        WarmupMode::Warmed => {
            let mut hier = MemoryHierarchy::new(config);
            let mut bu = BranchUnit::new(&config.predictor);
            let prefix = func.fast_forward(
                &mut stream,
                start,
                &mut (),
                Warming::Warm,
                Some((&mut hier, &mut bu)),
            );
            let mut sim = DetailedSim::with_warm_state(*config, cb.program(), hier, bu);
            (prefix, sim.simulate(&mut stream, len))
        }
    }
}

/// Fold per-point runs into the outcome, reconstructing the
/// serial-equivalent cost accounting from the recorded positions.
fn combine(plan: &SimulationPlan, runs: Vec<PointRun>) -> ExecutionOutcome {
    let mut cost = ExecutionCost::default();
    let mut end_of_prev = 0u64;
    let mut per_point = Vec::with_capacity(runs.len());
    for (start_pos, m) in runs {
        cost.functional_insts += start_pos.saturating_sub(end_of_prev);
        cost.detailed_insts += m.instructions;
        end_of_prev = start_pos + m.instructions;
        per_point.push(m);
    }
    let estimate = SimMetrics::weighted_estimate(
        plan.points().iter().zip(&per_point).map(|(p, m)| (p.weight, *m)),
    );
    ExecutionOutcome { estimate, per_point, cost }
}

/// Simulate the entire benchmark in detail — the ground truth the
/// paper's Table II deviations are measured against.
pub fn ground_truth(cb: &CompiledBenchmark, config: &MachineConfig) -> SimMetrics {
    let _span = mlpa_obs::span("core.truth.full");
    mlpa_obs::add("core.truth.passes", 1);
    let mut sim = DetailedSim::new(*config, cb.program());
    sim.simulate(&mut WorkloadStream::new(cb), u64::MAX)
}

/// Ground truth measured in segments: one persistent-state detailed
/// pass over the trace, slicing the *statistics* at the cumulative
/// boundaries of `lens`. Microarchitectural state persists across
/// `simulate` calls while statistics reset, and cycles are counted as
/// commit-cycle deltas, so the per-segment metrics sum exactly to the
/// single-pass [`ground_truth`] totals — accuracy attribution gets the
/// per-interval truth without paying a second full pass.
///
/// Each segment runs to the cumulative target, so a segment that
/// overshoots its boundary (blocks are atomic) shortens the next one
/// rather than letting drift accumulate. Segments whose target was
/// already covered, or that start past the end of the trace, come back
/// empty. Instructions past the last boundary are not simulated.
pub fn ground_truth_segmented(
    cb: &CompiledBenchmark,
    config: &MachineConfig,
    lens: &[u64],
) -> Vec<SimMetrics> {
    let _span = mlpa_obs::span("core.truth.segmented");
    mlpa_obs::add("core.truth.passes", 1);
    let mut sim = DetailedSim::new(*config, cb.program());
    let mut stream = WorkloadStream::new(cb);
    let mut pos = 0u64;
    let mut target = 0u64;
    lens.iter()
        .map(|&len| {
            target = target.saturating_add(len);
            let m = sim.simulate(&mut stream, target.saturating_sub(pos));
            pos += m.instructions;
            m
        })
        .collect()
}

/// [`ground_truth`] behind the artifact cache: reuse a stored result
/// when the cache holds one, simulate (and store) otherwise. With
/// `cache = None` this is exactly [`ground_truth`].
pub fn ground_truth_cached(
    cache: Option<&ArtifactCache>,
    cb: &CompiledBenchmark,
    config: &MachineConfig,
) -> SimMetrics {
    let key = cache.map(|_| CacheKey::new().field("spec", cb.spec()).field("config", config));
    if let (Some(c), Some(k)) = (cache, &key) {
        if let Some(m) = c.get::<SimMetrics>(k) {
            return m;
        }
    }
    let m = ground_truth(cb, config);
    if let (Some(c), Some(k)) = (cache, &key) {
        c.put(k, &m);
    }
    m
}

/// [`ground_truth_segmented`] behind the artifact cache. The segment
/// boundaries are part of the key, so the same benchmark measured with
/// different `lens` gets distinct entries.
pub fn ground_truth_segmented_cached(
    cache: Option<&ArtifactCache>,
    cb: &CompiledBenchmark,
    config: &MachineConfig,
    lens: &[u64],
) -> Vec<SimMetrics> {
    let key = cache.map(|_| {
        CacheKey::new().field("spec", cb.spec()).field("config", config).field("lens", &lens)
    });
    if let (Some(c), Some(k)) = (cache, &key) {
        if let Some(ms) = c.get::<Vec<SimMetrics>>(k) {
            return ms;
        }
    }
    let ms = ground_truth_segmented(cb, config, lens);
    if let (Some(c), Some(k)) = (cache, &key) {
        c.put(k, &ms);
    }
    ms
}

/// [`execute_plan_jobs`] behind the artifact cache. The key covers the
/// benchmark, machine config, warmup mode, and the full plan contents;
/// `jobs` is deliberately excluded because execution is bit-identical
/// across worker counts (see [`execute_plan_jobs`]).
pub fn execute_plan_cached(
    cache: Option<&ArtifactCache>,
    cb: &CompiledBenchmark,
    config: &MachineConfig,
    plan: &SimulationPlan,
    mode: WarmupMode,
    jobs: usize,
) -> ExecutionOutcome {
    let key = cache.map(|_| {
        CacheKey::new()
            .field("spec", cb.spec())
            .field("config", config)
            .field("mode", &mode)
            .field("plan", plan)
    });
    if let (Some(c), Some(k)) = (cache, &key) {
        if let Some(out) = c.get::<ExecutionOutcome>(k) {
            return out;
        }
    }
    let out = execute_plan_jobs(cb, config, plan, mode, jobs);
    if let (Some(c), Some(k)) = (cache, &key) {
        c.put(k, &out);
    }
    out
}

/// Execute a plan that did not come from profiling this benchmark in
/// this process — e.g. one loaded via [`crate::files::load`] — after
/// verifying it actually belongs to this trace.
///
/// A plan file records only its `total=` instruction count, so nothing
/// stops it from being replayed against a benchmark whose trace length
/// differs; the weights would then silently misrepresent the program
/// and produce wrong-but-plausible metrics. This entry point measures
/// the stream's real length (one metadata walk — control-flow draws
/// only, no instruction materialisation, see
/// [`crate::pipeline::trace_insts`]) and refuses to execute on a
/// mismatch.
///
/// # Errors
///
/// Returns an error naming both lengths when `plan.total_insts()` does
/// not equal the benchmark's trace length.
pub fn execute_plan_checked(
    cb: &CompiledBenchmark,
    config: &MachineConfig,
    plan: &SimulationPlan,
    mode: WarmupMode,
    jobs: usize,
) -> Result<ExecutionOutcome, String> {
    let actual = crate::pipeline::trace_insts(cb);
    if plan.total_insts() != actual {
        return Err(format!(
            "plan/trace mismatch: plan covers total={} instructions but benchmark {} \
             generates {actual}; this plan belongs to a different benchmark or scale",
            plan.total_insts(),
            cb.spec().name,
        ));
    }
    Ok(execute_plan_jobs(cb, config, plan, mode, jobs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanPoint;
    use mlpa_workloads::spec::{BenchmarkSpec, ScriptEntry};

    fn cb() -> CompiledBenchmark {
        // A working set with genuine L2 traffic so the L2 metrics are
        // informative.
        use mlpa_workloads::behavior::{InstMix, MemoryPattern};
        use mlpa_workloads::spec::{BlockSpec, PhaseSpec};
        CompiledBenchmark::compile(&BenchmarkSpec {
            phases: vec![PhaseSpec {
                blocks: vec![
                    BlockSpec {
                        mix: InstMix { load: 0.35, store: 0.1, ..InstMix::default() },
                        mem: MemoryPattern::RandomInSet { working_set: 128 * 1024 },
                        ..BlockSpec::default()
                    },
                    BlockSpec::default(),
                ],
                ..PhaseSpec::default()
            }],
            script: vec![ScriptEntry::new(0, 60_000); 5],
            ..BenchmarkSpec::default()
        })
        .unwrap()
    }

    /// Like [`cb`] but ~6× longer, so whole-run truth is dominated by
    /// steady state rather than the warmup ramp.
    fn long_cb() -> CompiledBenchmark {
        let short = cb();
        CompiledBenchmark::compile(&BenchmarkSpec {
            script: vec![ScriptEntry::new(0, 60_000); 30],
            ..short.spec().clone()
        })
        .unwrap()
    }

    fn plan_of(cb: &CompiledBenchmark, frac: &[(f64, f64, f64)]) -> SimulationPlan {
        // (start_frac, len_frac, weight) over the actual trace length.
        let total = ground_truth_len(cb);
        SimulationPlan::new(
            frac.iter()
                .map(|&(s, l, w)| PlanPoint {
                    start: (total as f64 * s) as u64,
                    len: ((total as f64 * l) as u64).max(1_000),
                    weight: w,
                })
                .collect(),
            total,
        )
        .unwrap()
    }

    fn ground_truth_len(cb: &CompiledBenchmark) -> u64 {
        let mut f = FunctionalSim::new(cb.program());
        f.run(WorkloadStream::new(cb), &mut ()).instructions
    }

    /// Regression (plan/trace mismatch): a plan saved from one
    /// benchmark and loaded via `files::load` carries only `total=` in
    /// its header, so nothing used to stop it from executing against a
    /// benchmark whose trace length differs — silently misweighted,
    /// wrong-but-plausible metrics. The checked entry point must refuse
    /// the pair and accept the matching one.
    #[test]
    fn checked_execution_rejects_plan_from_different_benchmark() {
        let short = cb();
        let long = long_cb();
        let plan = plan_of(&short, &[(0.1, 0.05, 0.5), (0.6, 0.05, 0.5)]);

        // Round-trip through the on-disk format, as a real cross-run
        // reuse would.
        let dir = std::env::temp_dir().join("mlpa-checked-exec-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plan.txt");
        crate::files::save(&plan, &path).unwrap();
        let loaded = crate::files::load(&path).unwrap();
        std::fs::remove_file(&path).ok();

        let config = MachineConfig::table1_base();
        let err = execute_plan_checked(&long, &config, &loaded, WarmupMode::Warmed, 1)
            .expect_err("mismatched plan accepted");
        assert!(err.contains("mismatch"), "unclear error: {err}");
        assert!(
            err.contains(&loaded.total_insts().to_string()),
            "error must name the plan total: {err}"
        );

        // The matching benchmark executes and agrees with the unchecked
        // path exactly.
        let checked = execute_plan_checked(&short, &config, &loaded, WarmupMode::Warmed, 1)
            .expect("matching plan rejected");
        let unchecked = execute_plan(&short, &config, &loaded, WarmupMode::Warmed);
        assert_eq!(checked, unchecked);
    }

    /// The cached execution wrappers are exact: a warm lookup returns
    /// bit-identical results to the computation that stored it, and
    /// `cache = None` degrades to the plain paths.
    #[test]
    fn cached_wrappers_roundtrip_exactly() {
        let bench = cb();
        let config = MachineConfig::table1_base();
        let plan = plan_of(&bench, &[(0.1, 0.05, 0.5), (0.6, 0.05, 0.5)]);
        let root =
            std::env::temp_dir().join(format!("mlpa-estimate-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let cache = crate::cache::ArtifactCache::open(&root).unwrap();
        let c = Some(&cache);

        let truth_cold = ground_truth_cached(c, &bench, &config);
        let truth_warm = ground_truth_cached(c, &bench, &config);
        assert_eq!(truth_cold, truth_warm);
        assert_eq!(truth_cold, ground_truth_cached(None, &bench, &config));

        let lens = [100_000u64, 100_000, 100_000];
        let seg_cold = ground_truth_segmented_cached(c, &bench, &config, &lens);
        let seg_warm = ground_truth_segmented_cached(c, &bench, &config, &lens);
        assert_eq!(seg_cold, seg_warm);

        let exec_cold = execute_plan_cached(c, &bench, &config, &plan, WarmupMode::Warmed, 1);
        let exec_warm = execute_plan_cached(c, &bench, &config, &plan, WarmupMode::Warmed, 1);
        assert_eq!(exec_cold, exec_warm);
        assert_eq!(exec_cold, execute_plan(&bench, &config, &plan, WarmupMode::Warmed));

        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn cost_matches_plan_accounting() {
        let cb = cb();
        let plan = plan_of(&cb, &[(0.1, 0.05, 0.5), (0.5, 0.05, 0.5)]);
        let out = execute_plan(&cb, &MachineConfig::table1_base(), &plan, WarmupMode::Cold);
        // Executed counts match the plan's theoretical accounting up to
        // block-boundary overshoot.
        let tol = 500;
        assert!(
            out.cost.detailed_insts.abs_diff(plan.detailed_insts()) < tol,
            "detailed {} vs plan {}",
            out.cost.detailed_insts,
            plan.detailed_insts()
        );
        assert!(
            out.cost.functional_insts.abs_diff(plan.functional_insts()) < tol,
            "functional {} vs plan {}",
            out.cost.functional_insts,
            plan.functional_insts()
        );
        assert_eq!(out.per_point.len(), 2);
    }

    #[test]
    fn single_phase_estimate_tracks_ground_truth() {
        // One phase, homogeneous behaviour: a single decent-sized warmed
        // sample should estimate CPI within a few percent. The benchmark
        // must be long enough that the initial cache-warmup ramp (which
        // a mid-run sample deliberately excludes) is a small share of
        // the whole-run truth.
        let cb = long_cb();
        let truth = ground_truth(&cb, &MachineConfig::table1_base()).estimate();
        let plan = plan_of(&cb, &[(0.3, 0.2, 1.0)]);
        let out = execute_plan(&cb, &MachineConfig::table1_base(), &plan, WarmupMode::Warmed);
        let dev = out.estimate.deviation_from(&truth);
        assert!(dev.cpi < 0.10, "CPI deviation {:.3}", dev.cpi);
        assert!(dev.l1_hit_rate < 0.05, "L1 deviation {:.3}", dev.l1_hit_rate);
    }

    #[test]
    fn warming_reduces_cold_start_bias_on_tiny_points() {
        let cb = cb();
        let truth = ground_truth(&cb, &MachineConfig::table1_base()).estimate();
        // Many tiny points: cold-start bias should be visible.
        let total = ground_truth_len(&cb);
        let tiny: Vec<PlanPoint> = (0..8)
            .map(|i| PlanPoint { start: total / 10 * (i + 1), len: 2_000, weight: 0.125 })
            .collect();
        let plan = SimulationPlan::new(tiny, total).unwrap();
        let cold = execute_plan(&cb, &MachineConfig::table1_base(), &plan, WarmupMode::Cold);
        let warm = execute_plan(&cb, &MachineConfig::table1_base(), &plan, WarmupMode::Warmed);
        let cold_dev = cold.estimate.deviation_from(&truth);
        let warm_dev = warm.estimate.deviation_from(&truth);
        assert!(
            warm_dev.cpi <= cold_dev.cpi + 0.01,
            "warming should not hurt: cold {:.3} warm {:.3}",
            cold_dev.cpi,
            warm_dev.cpi
        );
        assert!(
            warm_dev.l2_hit_rate <= cold_dev.l2_hit_rate + 0.01,
            "L2: cold {:.3} warm {:.3}",
            cold_dev.l2_hit_rate,
            warm_dev.l2_hit_rate
        );
    }

    /// The segmented pass is an exact refinement of the single-pass
    /// truth: summing every per-segment statistic telescopes to the
    /// whole-run result, field for field.
    #[test]
    fn segmented_truth_telescopes_to_ground_truth() {
        let cb = cb();
        let config = MachineConfig::table1_base();
        let whole = ground_truth(&cb, &config);
        let total = ground_truth_len(&cb);
        // Uneven segments plus a catch-all tail past the trace end.
        let lens = [total / 7, total / 3, total / 5, u64::MAX];
        let segs = ground_truth_segmented(&cb, &config, &lens);
        assert_eq!(segs.len(), lens.len());
        let mut sum = SimMetrics::default();
        for s in &segs {
            sum += *s;
        }
        assert_eq!(sum, whole, "segment sums must telescope exactly");
        // Each bounded segment landed at (or just past) its target.
        assert!(segs[0].instructions >= lens[0]);
    }

    /// Segments whose cumulative target is already covered (zero
    /// length, or a trace that ended early) come back empty rather
    /// than stealing instructions from their successors.
    #[test]
    fn segmented_truth_handles_empty_segments() {
        let cb = cb();
        let config = MachineConfig::table1_base();
        let total = ground_truth_len(&cb);
        let segs = ground_truth_segmented(&cb, &config, &[total / 2, 0, u64::MAX, 1_000]);
        assert_eq!(segs[1], SimMetrics::default(), "zero-length segment is empty");
        assert_eq!(segs[3], SimMetrics::default(), "past-the-end segment is empty");
        let sum: u64 = segs.iter().map(|s| s.instructions).sum();
        assert_eq!(sum, ground_truth(&cb, &config).instructions);
    }

    #[test]
    fn ground_truth_is_deterministic() {
        let cb = cb();
        let a = ground_truth(&cb, &MachineConfig::table1_base());
        let b = ground_truth(&cb, &MachineConfig::table1_base());
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_matches_serial_cold_and_warm() {
        let cb = cb();
        let plan = plan_of(
            &cb,
            &[(0.05, 0.03, 0.2), (0.2, 0.04, 0.2), (0.45, 0.03, 0.3), (0.7, 0.05, 0.3)],
        );
        for mode in [WarmupMode::Cold, WarmupMode::Warmed] {
            let serial = execute_plan_jobs(&cb, &MachineConfig::table1_base(), &plan, mode, 1);
            for jobs in [2, 4, 0] {
                let par = execute_plan_jobs(&cb, &MachineConfig::table1_base(), &plan, mode, jobs);
                assert_eq!(serial, par, "jobs={jobs} mode={mode:?} diverged from serial");
            }
        }
    }

    #[test]
    fn effective_jobs_resolves_zero_to_cores() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(3), 3);
    }

    /// Regression: worker panics used to be swallowed into the joined
    /// results (the collector just hit its `expect` on a `None` slot,
    /// losing the payload). They must surface with the failing point's
    /// label and the original message attached.
    #[test]
    #[should_panic(expected = "plan point 0")]
    fn worker_panics_propagate_with_point_label() {
        let cb = cb();
        let plan = plan_of(&cb, &[(0.1, 0.03, 0.5), (0.5, 0.03, 0.5)]);
        let mut bad = MachineConfig::table1_base();
        bad.width = 0; // DetailedSim::new panics: "invalid machine config"
        let _ = execute_plan_jobs(&cb, &bad, &plan, WarmupMode::Cold, 2);
    }

    /// The propagated message keeps the worker's original panic text.
    #[test]
    fn worker_panic_message_includes_payload() {
        let cb = cb();
        let plan = plan_of(&cb, &[(0.1, 0.03, 0.5), (0.5, 0.03, 0.5)]);
        let mut bad = MachineConfig::table1_base();
        bad.width = 0;
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_plan_jobs(&cb, &bad, &plan, WarmupMode::Cold, 2)
        }))
        .expect_err("invalid config must panic");
        let msg = panic_message(&*err);
        assert!(msg.contains("plan point 0"), "missing point label: {msg}");
        assert!(msg.contains("invalid machine config"), "missing payload: {msg}");
    }
}
