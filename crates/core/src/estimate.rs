//! Plan execution: fast-forward to each simulation point, simulate it
//! in detail, and combine the weighted per-point metrics into a
//! whole-program estimate.

use crate::plan::SimulationPlan;
use mlpa_sim::functional::Warming;
use mlpa_sim::{DetailedSim, FunctionalSim, MachineConfig, MetricEstimate, SimMetrics};
use mlpa_workloads::{CompiledBenchmark, WorkloadStream};

/// Microarchitectural-state policy at each simulation point.
///
/// The default is [`WarmupMode::Warmed`]. At this repo's 1000×
/// instruction scale-down the caches keep their Table I sizes, so a
/// cold-started sample pays its compulsory misses over 1000× fewer
/// instructions than the paper's setup — cold-start bias is amplified
/// three orders of magnitude and would swamp every accuracy comparison.
/// Warming restores the paper's regime (where a 10 M-instruction sample
/// amortises cold misses to the ~1 % level). [`WarmupMode::Cold`]
/// remains available; the `ablation_warmup` bench uses it to show the
/// Table II pattern in amplified form — fine-grained sampling degrades
/// drastically without warm state while coarse-grained sampling barely
/// notices, which is exactly why the paper's SimPoint column shows L2
/// deviations up to 23 %.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WarmupMode {
    /// Cold caches and predictor at every point — SimpleScalar's raw
    /// `-fastfwd` behaviour.
    Cold,
    /// Functionally warm caches and predictor during every fast-forward
    /// (checkpoint/warming methodology).
    #[default]
    Warmed,
}

/// What executing a plan cost, in actually-executed instructions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecutionCost {
    /// Instructions fast-forwarded functionally.
    pub functional_insts: u64,
    /// Instructions simulated in detail.
    pub detailed_insts: u64,
}

/// Result of executing a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionOutcome {
    /// The whole-program estimate (weighted combination).
    pub estimate: MetricEstimate,
    /// Per-point raw metrics, in plan order.
    pub per_point: Vec<SimMetrics>,
    /// Cost accounting.
    pub cost: ExecutionCost,
}

/// Execute `plan` on `config`, producing the sampled estimate.
///
/// With [`WarmupMode::Cold`] every point starts from a cold simulator
/// (separate `sim-outorder -fastfwd` invocations, as the paper's
/// baseline); with [`WarmupMode::Warmed`] one simulator persists and
/// fast-forwards warm its caches and predictor.
///
/// # Example
///
/// ```
/// use mlpa_core::estimate::{execute_plan, WarmupMode};
/// use mlpa_core::plan::{PlanPoint, SimulationPlan};
/// use mlpa_sim::MachineConfig;
/// use mlpa_workloads::{spec::BenchmarkSpec, CompiledBenchmark};
///
/// let cb = CompiledBenchmark::compile(&BenchmarkSpec::default())?;
/// let plan = SimulationPlan::new(
///     vec![PlanPoint { start: 0, len: 20_000, weight: 1.0 }],
///     500_000,
/// )?;
/// let out = execute_plan(&cb, &MachineConfig::table1_base(), &plan, WarmupMode::Cold);
/// assert!(out.estimate.cpi > 0.0);
/// # Ok::<(), String>(())
/// ```
pub fn execute_plan(
    cb: &CompiledBenchmark,
    config: &MachineConfig,
    plan: &SimulationPlan,
    mode: WarmupMode,
) -> ExecutionOutcome {
    let mut stream = WorkloadStream::new(cb);
    let mut func = FunctionalSim::new(cb.program());
    let mut cost = ExecutionCost::default();
    let mut per_point = Vec::with_capacity(plan.len());
    let mut pos = 0u64;

    // One persistent simulator for warm mode; rebuilt per point for
    // cold mode.
    let mut warm_sim =
        matches!(mode, WarmupMode::Warmed).then(|| DetailedSim::new(*config, cb.program()));

    for p in plan.points() {
        let skip = p.start.saturating_sub(pos);
        let skipped = match (&mut warm_sim, mode) {
            (Some(sim), WarmupMode::Warmed) => {
                let (hier, bu) = sim.warm_state_mut();
                func.fast_forward(&mut stream, skip, &mut (), Warming::Warm, Some((hier, bu)))
            }
            _ => func.fast_forward(&mut stream, skip, &mut (), Warming::None, None),
        };
        pos += skipped;
        cost.functional_insts += skipped;

        let metrics = match &mut warm_sim {
            Some(sim) => sim.simulate(&mut stream, p.len),
            None => {
                let mut sim = DetailedSim::new(*config, cb.program());
                sim.simulate(&mut stream, p.len)
            }
        };
        pos += metrics.instructions;
        cost.detailed_insts += metrics.instructions;
        per_point.push(metrics);
    }

    let estimate = SimMetrics::weighted_estimate(
        plan.points().iter().zip(&per_point).map(|(p, m)| (p.weight, *m)),
    );
    ExecutionOutcome { estimate, per_point, cost }
}

/// Simulate the entire benchmark in detail — the ground truth the
/// paper's Table II deviations are measured against.
pub fn ground_truth(cb: &CompiledBenchmark, config: &MachineConfig) -> SimMetrics {
    let mut sim = DetailedSim::new(*config, cb.program());
    sim.simulate(&mut WorkloadStream::new(cb), u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanPoint;
    use mlpa_workloads::spec::{BenchmarkSpec, ScriptEntry};

    fn cb() -> CompiledBenchmark {
        // A working set with genuine L2 traffic so the L2 metrics are
        // informative.
        use mlpa_workloads::behavior::{InstMix, MemoryPattern};
        use mlpa_workloads::spec::{BlockSpec, PhaseSpec};
        CompiledBenchmark::compile(&BenchmarkSpec {
            phases: vec![PhaseSpec {
                blocks: vec![
                    BlockSpec {
                        mix: InstMix { load: 0.35, store: 0.1, ..InstMix::default() },
                        mem: MemoryPattern::RandomInSet { working_set: 128 * 1024 },
                        ..BlockSpec::default()
                    },
                    BlockSpec::default(),
                ],
                ..PhaseSpec::default()
            }],
            script: vec![ScriptEntry::new(0, 60_000); 5],
            ..BenchmarkSpec::default()
        })
        .unwrap()
    }

    /// Like [`cb`] but ~6× longer, so whole-run truth is dominated by
    /// steady state rather than the warmup ramp.
    fn long_cb() -> CompiledBenchmark {
        let short = cb();
        CompiledBenchmark::compile(&BenchmarkSpec {
            script: vec![ScriptEntry::new(0, 60_000); 30],
            ..short.spec().clone()
        })
        .unwrap()
    }

    fn plan_of(cb: &CompiledBenchmark, frac: &[(f64, f64, f64)]) -> SimulationPlan {
        // (start_frac, len_frac, weight) over the actual trace length.
        let total = ground_truth_len(cb);
        SimulationPlan::new(
            frac.iter()
                .map(|&(s, l, w)| PlanPoint {
                    start: (total as f64 * s) as u64,
                    len: ((total as f64 * l) as u64).max(1_000),
                    weight: w,
                })
                .collect(),
            total,
        )
        .unwrap()
    }

    fn ground_truth_len(cb: &CompiledBenchmark) -> u64 {
        let mut f = FunctionalSim::new(cb.program());
        f.run(WorkloadStream::new(cb), &mut ()).instructions
    }

    #[test]
    fn cost_matches_plan_accounting() {
        let cb = cb();
        let plan = plan_of(&cb, &[(0.1, 0.05, 0.5), (0.5, 0.05, 0.5)]);
        let out = execute_plan(&cb, &MachineConfig::table1_base(), &plan, WarmupMode::Cold);
        // Executed counts match the plan's theoretical accounting up to
        // block-boundary overshoot.
        let tol = 500;
        assert!(
            out.cost.detailed_insts.abs_diff(plan.detailed_insts()) < tol,
            "detailed {} vs plan {}",
            out.cost.detailed_insts,
            plan.detailed_insts()
        );
        assert!(
            out.cost.functional_insts.abs_diff(plan.functional_insts()) < tol,
            "functional {} vs plan {}",
            out.cost.functional_insts,
            plan.functional_insts()
        );
        assert_eq!(out.per_point.len(), 2);
    }

    #[test]
    fn single_phase_estimate_tracks_ground_truth() {
        // One phase, homogeneous behaviour: a single decent-sized warmed
        // sample should estimate CPI within a few percent. The benchmark
        // must be long enough that the initial cache-warmup ramp (which
        // a mid-run sample deliberately excludes) is a small share of
        // the whole-run truth.
        let cb = long_cb();
        let truth = ground_truth(&cb, &MachineConfig::table1_base()).estimate();
        let plan = plan_of(&cb, &[(0.3, 0.2, 1.0)]);
        let out = execute_plan(&cb, &MachineConfig::table1_base(), &plan, WarmupMode::Warmed);
        let dev = out.estimate.deviation_from(&truth);
        assert!(dev.cpi < 0.10, "CPI deviation {:.3}", dev.cpi);
        assert!(dev.l1_hit_rate < 0.05, "L1 deviation {:.3}", dev.l1_hit_rate);
    }

    #[test]
    fn warming_reduces_cold_start_bias_on_tiny_points() {
        let cb = cb();
        let truth = ground_truth(&cb, &MachineConfig::table1_base()).estimate();
        // Many tiny points: cold-start bias should be visible.
        let total = ground_truth_len(&cb);
        let tiny: Vec<PlanPoint> = (0..8)
            .map(|i| PlanPoint {
                start: total / 10 * (i + 1),
                len: 2_000,
                weight: 0.125,
            })
            .collect();
        let plan = SimulationPlan::new(tiny, total).unwrap();
        let cold = execute_plan(&cb, &MachineConfig::table1_base(), &plan, WarmupMode::Cold);
        let warm = execute_plan(&cb, &MachineConfig::table1_base(), &plan, WarmupMode::Warmed);
        let cold_dev = cold.estimate.deviation_from(&truth);
        let warm_dev = warm.estimate.deviation_from(&truth);
        assert!(
            warm_dev.cpi <= cold_dev.cpi + 0.01,
            "warming should not hurt: cold {:.3} warm {:.3}",
            cold_dev.cpi,
            warm_dev.cpi
        );
        assert!(
            warm_dev.l2_hit_rate <= cold_dev.l2_hit_rate + 0.01,
            "L2: cold {:.3} warm {:.3}",
            cold_dev.l2_hit_rate,
            warm_dev.l2_hit_rate
        );
    }

    #[test]
    fn ground_truth_is_deterministic() {
        let cb = cb();
        let a = ground_truth(&cb, &MachineConfig::table1_base());
        let b = ground_truth(&cb, &MachineConfig::table1_base());
        assert_eq!(a, b);
    }
}
