//! `mlpa-serve` — the sampling-as-a-service daemon.
//!
//! Accepts analysis requests over HTTP and runs them on a bounded
//! worker pool with response-level caching and in-flight deduplication;
//! the protocol lives in [`mlpa_core::serve`]. Build with
//! `--features obs` for live `/metrics`; without it the daemon still
//! serves and caches, but counters read zero.
//!
//! ```text
//! mlpa-serve [--port N] [--workers N] [--queue N]
//!            [--cache DIR] [--cache-budget BYTES] [--obs FILE]
//! ```

use mlpa_core::serve::{Daemon, ServeOptions};
use mlpa_obs::elog;

struct Options {
    serve: ServeOptions,
    obs: Option<std::path::PathBuf>,
}

fn usage() -> &'static str {
    "usage: mlpa-serve [--port N] [--workers N] [--queue N] \
     [--cache DIR] [--cache-budget BYTES] [--obs FILE]"
}

fn parse_args() -> Result<Options, String> {
    let mut o = Options { serve: ServeOptions::default(), obs: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value =
            |name: &str| args.next().ok_or_else(|| format!("{name} requires a value\n{}", usage()));
        match arg.as_str() {
            "--port" => {
                o.serve.port = value("--port")?.parse().map_err(|e| format!("--port: {e}"))?;
            }
            "--workers" => {
                let n: usize =
                    value("--workers")?.parse().map_err(|e| format!("--workers: {e}"))?;
                if n == 0 {
                    return Err("--workers must be at least 1".into());
                }
                o.serve.workers = n;
            }
            "--queue" => {
                let n: usize = value("--queue")?.parse().map_err(|e| format!("--queue: {e}"))?;
                if n == 0 {
                    return Err("--queue must be at least 1".into());
                }
                o.serve.queue_depth = n;
            }
            "--cache" => o.serve.cache_dir = Some(value("--cache")?.into()),
            "--cache-budget" => {
                o.serve.cache_budget = Some(
                    value("--cache-budget")?.parse().map_err(|e| format!("--cache-budget: {e}"))?,
                );
            }
            "--obs" => o.obs = Some(value("--obs")?.into()),
            "-h" | "--help" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    if o.serve.cache_budget.is_some() && o.serve.cache_dir.is_none() {
        return Err("--cache-budget requires --cache".into());
    }
    Ok(o)
}

fn main() {
    let o = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            elog!("error", "{e}");
            std::process::exit(2);
        }
    };
    let cfg = mlpa_obs::ObsConfig { enabled: true, sink: o.obs.clone(), sample_ms: None };
    if let Err(e) = mlpa_obs::init(&cfg) {
        elog!("error", "opening obs sink: {e}");
        std::process::exit(2);
    }
    if !mlpa_obs::is_enabled() {
        elog!("obs", "built without `--features obs`; /metrics will be empty");
    }
    let daemon = match Daemon::start(o.serve) {
        Ok(d) => d,
        Err(e) => {
            elog!("error", "{e}");
            std::process::exit(2);
        }
    };
    // elog! so the bound address survives quiet stderr filtering: CI
    // parses this line to find the ephemeral port.
    elog!("serve", "mlpa-serve listening on {}", daemon.addr());
    // Serve until killed; jobs and HTTP run on their own threads.
    loop {
        std::thread::park();
    }
}
