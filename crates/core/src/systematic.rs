//! Systematic (SMARTS-style) sampling — the classic statistical
//! alternative to representative sampling (Wunderlich et al., ISCA
//! 2003), provided as an additional baseline.
//!
//! Instead of *choosing* representative intervals by phase analysis,
//! systematic sampling measures a small unit of `unit_len` instructions
//! every `period` instructions, uniformly across the whole run, and
//! averages with equal weights. Its accuracy follows from the central
//! limit theorem rather than from phase structure — and its cost
//! profile is the interesting contrast to COASTS: the samples span the
//! *entire* program, so functional fast-forwarding covers ~100 % of the
//! run no matter how few instructions are measured, exactly the cost
//! structure the paper's coarse-grained selection removes.

use crate::plan::{PlanPoint, SimulationPlan};
use crate::stats::standard_error;
use mlpa_sim::SimMetrics;

/// Parameters of a systematic-sampling plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystematicConfig {
    /// Measured unit length in instructions (SMARTS used 1 000).
    pub unit_len: u64,
    /// Distance between unit starts in instructions.
    pub period: u64,
    /// Offset of the first unit into the run.
    pub offset: u64,
}

impl SystematicConfig {
    /// A SMARTS-flavoured default at this repo's scale: 1 k-instruction
    /// units every 300 k instructions (matching the multi-level
    /// threshold's granularity, ≈ 700 units on a 200 M run).
    pub fn smarts_like() -> SystematicConfig {
        SystematicConfig { unit_len: 1_000, period: 300_000, offset: 150_000 }
    }

    /// Check the parameters.
    ///
    /// # Errors
    ///
    /// Returns a message if `unit_len` is zero or not smaller than
    /// `period`.
    pub fn validate(&self) -> Result<(), String> {
        if self.unit_len == 0 {
            return Err("unit length must be positive".into());
        }
        if self.unit_len >= self.period {
            return Err(format!(
                "unit length {} must be smaller than the period {}",
                self.unit_len, self.period
            ));
        }
        Ok(())
    }
}

/// Build a systematic plan over a trace of `total_insts` instructions.
///
/// # Errors
///
/// Returns an error for invalid configs or when no unit fits the trace.
///
/// # Example
///
/// ```
/// use mlpa_core::systematic::{systematic_plan, SystematicConfig};
///
/// let plan = systematic_plan(1_000_000, &SystematicConfig::smarts_like())?;
/// assert_eq!(plan.len(), 3); // units at 150 k, 450 k, 750 k
/// // Samples span the whole run: the last one sits in the final third.
/// assert!(plan.last_position() > 0.7);
/// # Ok::<(), String>(())
/// ```
pub fn systematic_plan(total_insts: u64, cfg: &SystematicConfig) -> Result<SimulationPlan, String> {
    cfg.validate()?;
    let mut points = Vec::new();
    let mut start = cfg.offset;
    while start + cfg.unit_len <= total_insts {
        points.push(PlanPoint { start, len: cfg.unit_len, weight: 0.0 });
        start += cfg.period;
    }
    if points.is_empty() {
        return Err(format!(
            "no systematic unit fits a {total_insts}-instruction trace at offset {}",
            cfg.offset
        ));
    }
    let w = 1.0 / points.len() as f64;
    for p in &mut points {
        p.weight = w;
    }
    SimulationPlan::new(points, total_insts)
}

/// CLT-based sampling diagnostics over per-unit metrics: mean CPI, its
/// standard error, and the relative half-width of the ~95 % confidence
/// interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingError {
    /// Mean per-unit CPI.
    pub mean_cpi: f64,
    /// Standard error of the mean.
    pub stderr: f64,
    /// `1.96 · stderr / mean` — the relative ±95 % half-width.
    pub relative_ci95: f64,
}

/// Compute [`SamplingError`] from per-unit measurements.
///
/// # Panics
///
/// Panics if `per_unit` is empty.
pub fn sampling_error(per_unit: &[SimMetrics]) -> SamplingError {
    assert!(!per_unit.is_empty(), "need at least one unit");
    let cpis: Vec<f64> = per_unit.iter().map(SimMetrics::cpi).collect();
    let mean = crate::stats::mean(&cpis);
    let se = standard_error(&cpis);
    SamplingError {
        mean_cpi: mean,
        stderr: se,
        relative_ci95: if mean > 0.0 { 1.96 * se / mean } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::{execute_plan, ground_truth, WarmupMode};
    use mlpa_sim::MachineConfig;
    use mlpa_workloads::{suite, CompiledBenchmark};

    #[test]
    fn plan_tiles_uniformly() {
        let cfg = SystematicConfig { unit_len: 100, period: 1_000, offset: 500 };
        let plan = systematic_plan(10_000, &cfg).unwrap();
        assert_eq!(plan.len(), 10); // starts at 500, 1500, …, 9500
        assert!((plan.points()[0].weight - 0.1).abs() < 1e-12);
        for w in plan.points().windows(2) {
            assert_eq!(w[1].start - w[0].start, 1_000);
        }
        // Functional cost spans nearly the whole run.
        assert!(plan.last_position() > 0.85);
        assert_eq!(plan.detailed_insts(), 1_000);
    }

    #[test]
    fn validation_catches_bad_configs() {
        assert!(SystematicConfig { unit_len: 0, period: 10, offset: 0 }.validate().is_err());
        assert!(SystematicConfig { unit_len: 10, period: 10, offset: 0 }.validate().is_err());
        assert!(systematic_plan(50, &SystematicConfig::smarts_like()).is_err());
    }

    #[test]
    fn systematic_estimate_tracks_truth_on_real_benchmark() {
        let spec = suite::benchmark_with_iters("eon", 2).unwrap().scaled(0.2);
        let cb = CompiledBenchmark::compile(&spec).unwrap();
        let config = MachineConfig::table1_base();
        let truth = ground_truth(&cb, &config).estimate();
        // Learn the actual trace length from a probe plan.
        let total = {
            use mlpa_sim::FunctionalSim;
            use mlpa_workloads::WorkloadStream;
            let mut f = FunctionalSim::new(cb.program());
            f.run(WorkloadStream::new(&cb), &mut ()).instructions
        };
        let cfg = SystematicConfig { unit_len: 1_000, period: 100_000, offset: 50_000 };
        let plan = systematic_plan(total, &cfg).unwrap();
        let out = execute_plan(&cb, &config, &plan, WarmupMode::Warmed);
        let dev = out.estimate.deviation_from(&truth);
        assert!(dev.cpi < 0.15, "systematic CPI deviation {:.3}", dev.cpi);
        // And the CLT error bar is finite and plausible.
        let err = sampling_error(&out.per_point);
        assert!(err.stderr >= 0.0);
        assert!(err.relative_ci95 < 0.5, "CI half-width {:.3}", err.relative_ci95);
    }

    #[test]
    fn sampling_error_shrinks_with_more_units() {
        let unit = |cpi: f64| SimMetrics {
            instructions: 1_000,
            cycles: (1_000.0 * cpi) as u64,
            ..SimMetrics::default()
        };
        let few: Vec<SimMetrics> = (0..4).map(|i| unit(1.0 + 0.1 * f64::from(i % 2))).collect();
        let many: Vec<SimMetrics> = (0..64).map(|i| unit(1.0 + 0.1 * f64::from(i % 2))).collect();
        let e_few = sampling_error(&few);
        let e_many = sampling_error(&many);
        assert!(e_many.stderr < e_few.stderr, "{} !< {}", e_many.stderr, e_few.stderr);
    }
}
