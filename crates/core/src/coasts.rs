//! COASTS — COarse-grained Accurately Sampling Technique for Simulators
//! (the paper's first-level sampling, §IV-A).
//!
//! Three steps, exactly as the paper describes:
//!
//! 1. **Boundary collection** — profile the trace's cyclic structures
//!    dynamically and discard those covering < 1 % of execution;
//! 2. **Metrics collection** — slice the trace into variable-length
//!    intervals at the iterations of the selected *outermost* structure
//!    and collect a 15-dimensional projected, normalised BBV per
//!    iteration instance;
//! 3. **Coarse sampling** — k-means the signatures (`Kmax = 3` by
//!    default) and pick the **earliest** instance of each coarse phase
//!    as its simulation point.
//!
//! Picking earliest instances is what collapses functional fast-forward
//! time: the last coarse point sits at ~17 % of the run on average
//! (paper §III-B), versus ~94 % for fine-grained SimPoint.

use crate::cache::CacheKey;
use crate::pipeline::{ProfilingContext, ProjectionSettings, FINE_INTERVAL};
use crate::plan::SimulationPlan;
use mlpa_phase::interval::Interval;
use mlpa_phase::loops::LoopProfile;
use mlpa_phase::simpoint::{select, SimPointConfig, SimPoints};
use mlpa_workloads::CompiledBenchmark;

/// COASTS parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoastsConfig {
    /// Minimum coverage for a cyclic structure to be considered (the
    /// paper discards < 1 %).
    pub min_coverage: f64,
    /// Clustering/selection parameters (defaults: `Kmax = 3`,
    /// earliest-instance selection).
    pub selection: SimPointConfig,
    /// Projection settings.
    pub projection: ProjectionSettings,
}

impl Default for CoastsConfig {
    fn default() -> Self {
        CoastsConfig {
            min_coverage: 0.01,
            selection: SimPointConfig::coasts(),
            projection: ProjectionSettings::default(),
        }
    }
}

/// Everything COASTS produces for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct CoastsOutcome {
    /// The executable coarse plan.
    pub plan: SimulationPlan,
    /// The raw coarse selection.
    pub simpoints: SimPoints,
    /// The coarse iteration intervals (kept for re-sampling and
    /// Fig.-1-style visualisation).
    pub intervals: Vec<Interval>,
    /// The loop profile of pass 1.
    pub profile: LoopProfile,
    /// Header block of the selected outermost structure.
    pub header: mlpa_isa::BlockId,
    /// Index in `intervals` of the first *classified* interval: the
    /// slice `simpoints.assignments` indexes is
    /// `intervals[body_start .. body_start + assignments.len()]` (the
    /// prologue/epilogue exclusion documented on the classification
    /// body). Accuracy attribution uses this to align cluster
    /// assignments with the full interval list.
    pub body_start: usize,
}

/// Run COASTS on a compiled benchmark.
///
/// # Errors
///
/// Returns an error if no cyclic structure clears `min_coverage` (a
/// straight-line program — not meaningful to sample coarsely) or the
/// trace is empty.
///
/// # Example
///
/// ```
/// use mlpa_core::coasts::{coasts, CoastsConfig};
/// use mlpa_workloads::{spec::BenchmarkSpec, CompiledBenchmark};
///
/// let cb = CompiledBenchmark::compile(&BenchmarkSpec::default())?;
/// let out = coasts(&cb, &CoastsConfig::default())?;
/// assert!(out.plan.len() <= 3, "Kmax = 3 coarse phases");
/// # Ok::<(), String>(())
/// ```
pub fn coasts(cb: &CompiledBenchmark, cfg: &CoastsConfig) -> Result<CoastsOutcome, String> {
    let mut ctx = ProfilingContext::new(cb, cfg.projection, FINE_INTERVAL);
    coasts_with(&mut ctx, cfg)
}

/// [`coasts`] on a shared [`ProfilingContext`]: reuses the context's
/// loop profile and boundary intervals (populating them if absent), so
/// a harness that also runs the fine baseline and multi-level sampling
/// streams the trace once per *kind* of information rather than once
/// per method. The context's projection is used for the signatures
/// (its settings come from the same [`CoastsConfig::projection`] in
/// every in-repo caller).
///
/// # Errors
///
/// Same failure modes as [`coasts`].
pub fn coasts_with(
    ctx: &mut ProfilingContext<'_>,
    cfg: &CoastsConfig,
) -> Result<CoastsOutcome, String> {
    let _span = mlpa_obs::span("core.select.coasts");
    let cb = ctx.benchmark();
    let cache = ctx.cache();
    let key = cache.as_ref().map(|_| CacheKey::new().field("spec", cb.spec()).field("coasts", cfg));
    if let (Some(c), Some(k)) = (&cache, &key) {
        if let Some(out) = c.get::<CoastsOutcome>(k) {
            return Ok(out);
        }
    }
    // Pass 1: boundary information.
    let profile = ctx.loop_profile().clone();
    let header = profile
        .select_outermost(cfg.min_coverage)
        .ok_or_else(|| {
            format!(
                "benchmark {}: no cyclic structure covers >= {:.0}% of execution",
                cb.spec().name,
                cfg.min_coverage * 100.0
            )
        })?
        .header;

    // Pass 2: metrics information per iteration instance.
    let (intervals, has_prologue) = ctx.boundary_intervals(header);
    if intervals.is_empty() {
        return Err(format!("benchmark {} produced an empty trace", cb.spec().name));
    }

    mlpa_obs::add("core.profile.coarse_intervals", intervals.len() as u64);
    let (body_start, body) = classification_body(intervals, has_prologue);
    // `select` copies the signatures into contiguous row-major storage
    // and clusters with the pruned k-means (see DESIGN.md, "Kernel
    // layout").
    let simpoints = select(body, &cfg.selection);
    let total_insts: u64 = intervals.iter().map(|iv| iv.len).sum();
    let points = simpoints
        .points
        .iter()
        .map(|p| crate::plan::PlanPoint { start: p.start, len: p.len, weight: p.weight })
        .collect();
    let plan = SimulationPlan::new(points, total_insts)?;
    let intervals = intervals.to_vec();
    let out = CoastsOutcome { plan, simpoints, intervals, profile, header, body_start };
    if let (Some(c), Some(k)) = (&cache, &key) {
        c.put(k, &out);
    }
    Ok(out)
}

/// Coarse-grained sampling classifies *iteration instances only*: the
/// prologue (code before the loop is first entered) is not an iteration
/// of the cyclic structure, and the final interval absorbs the
/// program's epilogue (there is no header entry after it), so neither
/// is a pure iteration instance. Both are excluded from classification —
/// they must neither be selected as representatives nor counted in
/// phase weights; their few instructions are simply fast-forwarded (or
/// never reached), as in the paper.
///
/// Degenerate traces cannot honour both exclusions and still leave
/// something to classify, so the rule is applied best-effort, never
/// returning an empty body:
///
/// * one interval — it is prologue, iterations, and epilogue at once;
///   classify it as-is;
/// * two intervals without a prologue — the first is a pure iteration;
///   only the epilogue-absorbing final interval is dropped;
/// * two intervals with a prologue — the prologue is dropped and the
///   final interval (the loop's only iteration instance, epilogue
///   included) is kept: a partial iteration beats non-loop code as the
///   phase representative.
fn classification_body(intervals: &[Interval], has_prologue: bool) -> (usize, &[Interval]) {
    let start = usize::from(has_prologue && intervals.len() > 1);
    let after_prologue = &intervals[start..];
    if after_prologue.len() > 1 {
        (start, &after_prologue[..after_prologue.len() - 1])
    } else {
        (start, after_prologue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpa_workloads::spec::{BenchmarkSpec, PhaseSpec, ScriptEntry};

    fn multi_phase_cb(phases: usize, iters: usize) -> CompiledBenchmark {
        let spec = BenchmarkSpec {
            phases: (0..phases)
                .map(|i| PhaseSpec { name: format!("p{i}"), ..PhaseSpec::default() })
                .collect(),
            script: (0..iters).map(|i| ScriptEntry::new(i % phases, 60_000)).collect(),
            ..BenchmarkSpec::default()
        };
        CompiledBenchmark::compile(&spec).unwrap()
    }

    #[test]
    fn selects_earliest_instances() {
        let cb = multi_phase_cb(2, 10);
        let out = coasts(&cb, &CoastsConfig::default()).unwrap();
        // Earliest instances of both phases are within the first few
        // intervals, so the last point sits very early.
        assert!(
            out.plan.last_position() < 0.45,
            "last coarse point at {:.2}",
            out.plan.last_position()
        );
        assert!(out.plan.len() <= 3);
        assert_eq!(out.header, cb.outer_header());
    }

    #[test]
    fn coarse_points_are_iteration_sized() {
        let cb = multi_phase_cb(2, 10);
        let out = coasts(&cb, &CoastsConfig::default()).unwrap();
        for p in out.plan.points() {
            // Points are whole outer iterations (~60 k) or the prologue.
            assert!(p.len > 500, "point of len {} too small", p.len);
        }
        let mean = out.plan.mean_point_len();
        assert!(mean > 10_000.0, "mean coarse point len {mean}");
    }

    #[test]
    fn functional_fraction_is_small() {
        // With early phase first-occurrences, fast-forward is tiny
        // compared to fine-grained SimPoint's ~94 %.
        let cb = multi_phase_cb(3, 30);
        let out = coasts(&cb, &CoastsConfig::default()).unwrap();
        assert!(
            out.plan.functional_fraction() < 0.30,
            "functional fraction {:.2}",
            out.plan.functional_fraction()
        );
    }

    #[test]
    fn deterministic() {
        let cb = multi_phase_cb(2, 8);
        let cfg = CoastsConfig::default();
        let a = coasts(&cb, &cfg).unwrap();
        let b = coasts(&cb, &cfg).unwrap();
        assert_eq!(a.plan, b.plan);
    }

    #[test]
    fn respects_kmax() {
        let cb = multi_phase_cb(5, 25);
        let mut cfg = CoastsConfig::default();
        cfg.selection.k_max = 2;
        let out = coasts(&cb, &cfg).unwrap();
        assert!(out.plan.len() <= 2);
    }

    #[test]
    fn impossible_coverage_errors() {
        let cb = multi_phase_cb(1, 4);
        let cfg = CoastsConfig { min_coverage: 1.5, ..CoastsConfig::default() };
        let err = coasts(&cb, &cfg).unwrap_err();
        assert!(err.contains("no cyclic structure"), "{err}");
    }

    fn iv(index: usize, start: u64, len: u64) -> Interval {
        Interval { index, start, len, vector: vec![1.0] }
    }

    /// Pins the prologue/epilogue exclusion rule on every degenerate
    /// interval count (the doc comment on [`classification_body`] is
    /// the specification; these are its executable form).
    #[test]
    fn classification_body_edge_cases() {
        let three = [iv(0, 0, 10), iv(1, 10, 20), iv(2, 30, 5)];

        // >= 3 intervals: both exclusions apply (or just the epilogue
        // when there is no prologue).
        assert_eq!(classification_body(&three, true), (1, &three[1..2]));
        assert_eq!(classification_body(&three, false), (0, &three[..2]));

        // Exactly 2 with a prologue: drop the prologue, keep the final
        // interval even though it absorbs the epilogue — a partial
        // iteration beats non-loop code as the representative.
        assert_eq!(classification_body(&three[..2], true), (1, &three[1..2]));
        // Exactly 2 without a prologue: the first is a pure iteration;
        // drop only the epilogue-absorbing final interval.
        assert_eq!(classification_body(&three[..2], false), (0, &three[..1]));

        // A single interval is prologue, body, and epilogue at once:
        // classified as-is regardless of the prologue flag.
        assert_eq!(classification_body(&three[..1], true), (0, &three[..1]));
        assert_eq!(classification_body(&three[..1], false), (0, &three[..1]));
    }

    #[test]
    fn classification_body_never_empty() {
        let mut intervals = Vec::new();
        for n in 1..6 {
            intervals.push(iv(n - 1, (n as u64 - 1) * 10, 10));
            for has_prologue in [false, true] {
                let (start, body) = classification_body(&intervals, has_prologue);
                assert!(!body.is_empty(), "n={n} prologue={has_prologue}");
                // Everything classified is a real interval of the input,
                // and `start` locates the body within it.
                assert!(body.iter().all(|b| intervals.contains(b)));
                assert_eq!(&intervals[start..start + body.len()], body);
            }
        }
    }

    #[test]
    fn intervals_cover_trace() {
        let cb = multi_phase_cb(2, 6);
        let out = coasts(&cb, &CoastsConfig::default()).unwrap();
        mlpa_phase::interval::validate_intervals(&out.intervals).unwrap();
        let total: u64 = out.intervals.iter().map(|iv| iv.len).sum();
        assert_eq!(total, out.plan.total_insts());
    }

    /// `body_start` aligns the assignment vector with the full interval
    /// list: each selected point's interval (a body index) maps back to
    /// a real interval with the point's start offset.
    #[test]
    fn body_start_aligns_assignments_with_intervals() {
        let cb = multi_phase_cb(2, 10);
        let out = coasts(&cb, &CoastsConfig::default()).unwrap();
        let n = out.simpoints.assignments.len();
        assert!(out.body_start + n <= out.intervals.len());
        for p in &out.simpoints.points {
            let iv = &out.intervals[out.body_start + p.interval];
            assert_eq!(iv.start, p.start);
            assert_eq!(iv.len, p.len);
        }
    }
}
