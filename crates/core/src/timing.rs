//! The simulation-time model behind the paper's speedup figures
//! (Figs. 3 and 4).
//!
//! A sampling run's time is
//! `T = N_detail · c_d + N_functional · c_f`,
//! where `c_d` and `c_f` are the per-instruction costs of detailed and
//! functional simulation. Everything in Figs. 3/4 follows from the
//! Table III instruction shares plus the ratio `r = c_d / c_f`:
//! solving the paper's own numbers (Table III + the 6.78× COASTS
//! speedup) gives `r ≈ 32.5`, which also predicts the reported 14.04×
//! multi-level speedup — so the paper's results are internally
//! consistent with this model. We report speedups under both the
//! paper-implied ratio and the ratio *measured* from this repo's two
//! simulators.

use crate::plan::SimulationPlan;
use mlpa_sim::{DetailedSim, FunctionalSim, MachineConfig};
use mlpa_workloads::{CompiledBenchmark, WorkloadStream};

/// Per-instruction cost model of the two simulation modes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Seconds (or arbitrary units) per detailed-simulated instruction.
    pub detailed_per_inst: f64,
    /// Units per functionally-simulated instruction.
    pub functional_per_inst: f64,
}

impl CostModel {
    /// The ratio implied by the paper's own numbers (`r ≈ 32.5`), in
    /// arbitrary units with `c_f = 1`.
    pub fn paper_implied() -> CostModel {
        CostModel { detailed_per_inst: 32.5, functional_per_inst: 1.0 }
    }

    /// A model with an explicit detailed/functional cost ratio.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not positive and finite.
    pub fn from_ratio(ratio: f64) -> CostModel {
        assert!(ratio > 0.0 && ratio.is_finite(), "ratio must be positive, got {ratio}");
        CostModel { detailed_per_inst: ratio, functional_per_inst: 1.0 }
    }

    /// Measure both simulators on a sample of `cb` and return the
    /// wall-clock-derived model. `sample_insts` instructions are run in
    /// each mode (clamped to the trace).
    ///
    /// Simulator and stream construction happen *outside* the timed
    /// windows — on short samples their setup cost would otherwise
    /// inflate the measured per-instruction costs (and bias the ratio,
    /// since `DetailedSim::new` is the heavier constructor). Each mode
    /// is sampled [`Self::MEASURE_SAMPLES`] times and the best (minimum)
    /// time is kept, the standard defense against scheduler noise and
    /// one-shot cache-cold outliers.
    ///
    /// # Panics
    ///
    /// Panics if `sample_insts` is zero.
    pub fn measure(cb: &CompiledBenchmark, config: &MachineConfig, sample_insts: u64) -> CostModel {
        assert!(sample_insts > 0, "sample_insts must be positive");

        let mut func_best = f64::INFINITY;
        let mut func_insts = 0u64;
        for _ in 0..Self::MEASURE_SAMPLES {
            let mut func = FunctionalSim::new(cb.program());
            let mut stream = WorkloadStream::new(cb);
            let t0 = std::time::Instant::now();
            let ran = func.fast_forward(
                &mut stream,
                sample_insts,
                &mut (),
                mlpa_sim::Warming::None,
                None,
            );
            let t = t0.elapsed().as_secs_f64();
            if t < func_best {
                func_best = t;
                func_insts = ran;
            }
        }

        let mut det_best = f64::INFINITY;
        let mut det_insts = 0u64;
        for _ in 0..Self::MEASURE_SAMPLES {
            let mut det = DetailedSim::new(*config, cb.program());
            let mut stream = WorkloadStream::new(cb);
            let t0 = std::time::Instant::now();
            let m = det.simulate(&mut stream, sample_insts);
            let t = t0.elapsed().as_secs_f64();
            if t < det_best {
                det_best = t;
                det_insts = m.instructions;
            }
        }

        CostModel {
            detailed_per_inst: det_best / det_insts.max(1) as f64,
            functional_per_inst: func_best / func_insts.max(1) as f64,
        }
    }

    /// Timing samples per mode in [`CostModel::measure`]; the minimum
    /// is kept.
    pub const MEASURE_SAMPLES: u32 = 3;

    /// The detailed/functional cost ratio `r`.
    pub fn ratio(&self) -> f64 {
        self.detailed_per_inst / self.functional_per_inst
    }

    /// Modelled time of a sampling run with the given instruction
    /// volumes.
    pub fn time(&self, detailed_insts: u64, functional_insts: u64) -> f64 {
        detailed_insts as f64 * self.detailed_per_inst
            + functional_insts as f64 * self.functional_per_inst
    }

    /// Modelled time of executing `plan`.
    pub fn plan_time(&self, plan: &SimulationPlan) -> f64 {
        self.time(plan.detailed_insts(), plan.functional_insts())
    }

    /// Speedup of `plan` over `baseline` under this model (> 1 means
    /// `plan` is faster).
    pub fn speedup(&self, baseline: &SimulationPlan, plan: &SimulationPlan) -> f64 {
        self.plan_time(baseline) / self.plan_time(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanPoint;

    fn plan(detail: u64, last_end: u64, total: u64) -> SimulationPlan {
        SimulationPlan::new(
            vec![PlanPoint { start: last_end - detail, len: detail, weight: 1.0 }],
            total,
        )
        .unwrap()
    }

    #[test]
    fn paper_numbers_reproduce_paper_speedups() {
        // Table III (as fractions of a nominal 1e9-instruction run):
        // SimPoint: detail 0.09 %, functional 93.76 %.
        // COASTS:   detail 0.37 %, functional  2.21 %.
        // Multi:    detail 0.05 %, functional  5.06 %.
        let m = CostModel::paper_implied();
        let t_simpoint = m.time(900_000, 937_600_000);
        let t_coasts = m.time(3_700_000, 22_100_000);
        let t_multi = m.time(500_000, 50_600_000);
        let coasts_speedup = t_simpoint / t_coasts;
        let multi_speedup = t_simpoint / t_multi;
        assert!(
            (6.0..8.0).contains(&coasts_speedup),
            "COASTS speedup {coasts_speedup:.2} vs paper 6.78"
        );
        assert!(
            (13.0..16.0).contains(&multi_speedup),
            "multi-level speedup {multi_speedup:.2} vs paper 14.04"
        );
    }

    #[test]
    fn ratio_and_time_linear() {
        let m = CostModel::from_ratio(10.0);
        assert_eq!(m.ratio(), 10.0);
        assert_eq!(m.time(10, 100), 200.0);
        let double = m.time(20, 200);
        assert_eq!(double, 400.0);
    }

    #[test]
    fn plan_time_uses_plan_accounting() {
        let m = CostModel::from_ratio(10.0);
        let p = plan(1_000, 5_000, 100_000);
        // detail 1000×10 + functional 4000×1.
        assert_eq!(m.plan_time(&p), 14_000.0);
    }

    #[test]
    fn speedup_orders_plans() {
        let m = CostModel::paper_implied();
        let slow = plan(1_000, 95_000, 100_000);
        let fast = plan(2_000, 10_000, 100_000);
        assert!(m.speedup(&slow, &fast) > 1.0);
        assert!(m.speedup(&fast, &slow) < 1.0);
        assert!((m.speedup(&slow, &slow) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measured_model_is_sane() {
        let spec = mlpa_workloads::suite::benchmark("gzip").unwrap().scaled(0.02);
        let cb = CompiledBenchmark::compile(&spec).unwrap();
        let m = CostModel::measure(&cb, &MachineConfig::table1_base(), 200_000);
        // With construction outside the timed windows and best-of-N
        // sampling, the bounds can be meaningfully tighter than the
        // old one-shot (1, 10_000) sanity check: a detailed cycle-level
        // pass clearly costs more per instruction than a functional
        // decode-and-count, and not by four orders of magnitude.
        assert!(
            m.detailed_per_inst.is_finite() && m.detailed_per_inst > 0.0,
            "detailed cost must be positive: {}",
            m.detailed_per_inst
        );
        assert!(
            m.functional_per_inst.is_finite() && m.functional_per_inst > 0.0,
            "functional cost must be positive: {}",
            m.functional_per_inst
        );
        assert!(
            m.ratio() > 1.5,
            "detailed must cost clearly more than functional: r = {}",
            m.ratio()
        );
        assert!(m.ratio() < 2_000.0, "ratio {} implausible", m.ratio());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_ratio_panics() {
        let _ = CostModel::from_ratio(0.0);
    }
}
