//! Plain-text persistence for simulation plans — the analogue of the
//! SimPoint tool's `.simpoints` / `.weights` output files, so a plan
//! computed once (profiling + clustering) can be re-executed against
//! many machine configurations without re-analysis.
//!
//! Format: a one-line header, then one `start len weight` row per
//! point, whitespace-separated. `#` starts a comment.
//!
//! ```text
//! # mlpa-plan v1 total=12345678
//! 1000 10000 0.25
//! 50000 10000 0.75
//! ```

use crate::plan::{PlanPoint, SimulationPlan};
use std::fmt::Write as _;
use std::path::Path;

/// Serialise a plan to the text format.
///
/// # Example
///
/// ```
/// use mlpa_core::files::{from_str, to_string};
/// use mlpa_core::plan::{PlanPoint, SimulationPlan};
///
/// let plan = SimulationPlan::new(
///     vec![PlanPoint { start: 0, len: 100, weight: 1.0 }], 1_000)?;
/// let text = to_string(&plan);
/// assert_eq!(from_str(&text)?, plan);
/// # Ok::<(), String>(())
/// ```
pub fn to_string(plan: &SimulationPlan) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# mlpa-plan v1 total={}", plan.total_insts());
    for p in plan.points() {
        let _ = writeln!(out, "{} {} {}", p.start, p.len, p.weight);
    }
    out
}

/// Parse a plan from the text format.
///
/// # Errors
///
/// Returns a message if the header is missing/malformed, a row does not
/// parse, or the resulting plan violates [`SimulationPlan::new`]'s
/// invariants.
pub fn from_str(text: &str) -> Result<SimulationPlan, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty plan file")?;
    let total: u64 = header
        .strip_prefix("# mlpa-plan v1 total=")
        .ok_or_else(|| format!("bad header: {header:?}"))?
        .trim()
        .parse()
        .map_err(|e| format!("bad total in header: {e}"))?;

    let mut points = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let mut field =
            |name: &str| it.next().ok_or_else(|| format!("line {}: missing {name}", lineno + 2));
        let start: u64 =
            field("start")?.parse().map_err(|e| format!("line {}: start: {e}", lineno + 2))?;
        let len: u64 =
            field("len")?.parse().map_err(|e| format!("line {}: len: {e}", lineno + 2))?;
        let weight: f64 =
            field("weight")?.parse().map_err(|e| format!("line {}: weight: {e}", lineno + 2))?;
        if it.next().is_some() {
            return Err(format!("line {}: trailing fields", lineno + 2));
        }
        points.push(PlanPoint { start, len, weight });
    }
    SimulationPlan::new(points, total)
}

/// Write a plan to a file, crash-safely.
///
/// Uses [`crate::cache::atomic_write`] (temp file + fsync + rename), so
/// an interrupted save leaves the previous file intact instead of a
/// torn, half-parseable plan.
///
/// # Errors
///
/// Returns the I/O error message.
pub fn save(plan: &SimulationPlan, path: impl AsRef<Path>) -> Result<(), String> {
    crate::cache::atomic_write(path.as_ref(), to_string(plan).as_bytes())
}

/// Read a plan from a file.
///
/// # Errors
///
/// Returns the I/O or parse error message.
pub fn load(path: impl AsRef<Path>) -> Result<SimulationPlan, String> {
    let text = std::fs::read_to_string(path.as_ref())
        .map_err(|e| format!("reading {}: {e}", path.as_ref().display()))?;
    from_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> SimulationPlan {
        SimulationPlan::new(
            vec![
                PlanPoint { start: 100, len: 50, weight: 0.125 },
                PlanPoint { start: 400, len: 150, weight: 0.875 },
            ],
            10_000,
        )
        .expect("valid")
    }

    #[test]
    fn roundtrip_preserves_plan() {
        let p = plan();
        assert_eq!(from_str(&to_string(&p)).unwrap(), p);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# mlpa-plan v1 total=1000\n\n# a comment\n0 10 1.0  # inline\n";
        let p = from_str(text).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.total_insts(), 1_000);
    }

    #[test]
    fn bad_inputs_are_rejected_with_context() {
        assert!(from_str("").unwrap_err().contains("empty"));
        assert!(from_str("bogus\n").unwrap_err().contains("bad header"));
        let e = from_str("# mlpa-plan v1 total=100\n0 ten 1.0\n").unwrap_err();
        assert!(e.contains("line 2"), "{e}");
        let e = from_str("# mlpa-plan v1 total=100\n0 10\n").unwrap_err();
        assert!(e.contains("missing weight"), "{e}");
        let e = from_str("# mlpa-plan v1 total=100\n0 10 1.0 9\n").unwrap_err();
        assert!(e.contains("trailing"), "{e}");
        // Structural violations surface from SimulationPlan::new.
        let e = from_str("# mlpa-plan v1 total=100\n0 10 0.4\n").unwrap_err();
        assert!(e.contains("weights sum"), "{e}");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("mlpa-plan-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plan.txt");
        let p = plan();
        save(&p, &path).unwrap();
        assert_eq!(load(&path).unwrap(), p);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_rejected_with_clear_error() {
        let dir = std::env::temp_dir().join("mlpa-plan-truncated-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plan.txt");
        let text = to_string(&plan());
        // Simulate the torn write the atomic save prevents: every
        // prefix that loses data (anything shorter than the full file
        // minus its trailing newline) must fail to load — either a row
        // is missing fields or the weights no longer sum to 1.
        for cut in 0..text.len() - 1 {
            std::fs::write(&path, &text.as_bytes()[..cut]).unwrap();
            let err = load(&path).expect_err("truncated plan accepted");
            assert!(
                err.contains("empty")
                    || err.contains("bad header")
                    || err.contains("bad total")
                    || err.contains("missing")
                    || err.contains("weights sum")
                    || err.contains("non-positive weight")
                    || err.contains("at least one"),
                "unclear error for cut at {cut}: {err}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_replaces_existing_file_atomically() {
        let dir = std::env::temp_dir().join("mlpa-plan-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("plan.txt");
        std::fs::write(&path, "garbage from a previous run").unwrap();
        let p = plan();
        save(&p, &path).unwrap();
        assert_eq!(load(&path).unwrap(), p);
        // No temp droppings next to the plan.
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n != "plan.txt")
            .collect();
        assert!(stray.is_empty(), "leftover temp files: {stray:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let e = load("/definitely/not/here.plan").unwrap_err();
        assert!(e.contains("reading"), "{e}");
    }
}
