//! Simulation plans: the weighted set of trace regions a sampling
//! method decides to simulate in detail, plus the accounting that
//! determines simulation cost (the paper's Table III).

use std::fmt;

/// One region of the trace to simulate in detail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanPoint {
    /// First instruction (global index).
    pub start: u64,
    /// Length in instructions.
    pub len: u64,
    /// Weight in the whole-program estimate (weights sum to 1).
    pub weight: f64,
}

impl PlanPoint {
    /// One past the last instruction.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }
}

/// An executable sampling plan for one benchmark.
///
/// Invariants (checked by [`SimulationPlan::new`]): points are sorted,
/// non-overlapping, non-empty, within the trace, and weights sum to 1.
///
/// # Example
///
/// ```
/// use mlpa_core::plan::{PlanPoint, SimulationPlan};
///
/// let plan = SimulationPlan::new(
///     vec![
///         PlanPoint { start: 0, len: 100, weight: 0.25 },
///         PlanPoint { start: 500, len: 100, weight: 0.75 },
///     ],
///     10_000,
/// )?;
/// assert_eq!(plan.detailed_insts(), 200);
/// assert_eq!(plan.functional_insts(), 400); // gap between the points
/// assert_eq!(plan.skipped_insts(), 9_400);  // tail after the last point
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationPlan {
    points: Vec<PlanPoint>,
    total_insts: u64,
}

impl SimulationPlan {
    /// Build a plan, validating every invariant.
    ///
    /// # Errors
    ///
    /// Returns a message if points are unsorted/overlapping/empty/out of
    /// range or weights do not sum to 1 (±1e-6).
    pub fn new(points: Vec<PlanPoint>, total_insts: u64) -> Result<SimulationPlan, String> {
        if points.is_empty() {
            return Err("a plan needs at least one simulation point".into());
        }
        if total_insts == 0 {
            return Err("total instruction count must be positive".into());
        }
        let mut wsum = 0.0;
        let mut prev_end = 0u64;
        for (i, p) in points.iter().enumerate() {
            if p.len == 0 {
                return Err(format!("point {i} is empty"));
            }
            if i > 0 && p.start < prev_end {
                return Err(format!(
                    "point {i} starting at {} overlaps previous ending at {prev_end}",
                    p.start
                ));
            }
            if p.end() > total_insts {
                return Err(format!(
                    "point {i} ends at {} beyond the trace ({total_insts})",
                    p.end()
                ));
            }
            if !(p.weight > 0.0 && p.weight.is_finite()) {
                return Err(format!("point {i} has non-positive weight {}", p.weight));
            }
            wsum += p.weight;
            prev_end = p.end();
        }
        if (wsum - 1.0).abs() > 1e-6 {
            return Err(format!("weights sum to {wsum}, expected 1"));
        }
        Ok(SimulationPlan { points, total_insts })
    }

    /// The points, sorted by start.
    pub fn points(&self) -> &[PlanPoint] {
        &self.points
    }

    /// Total trace length.
    pub fn total_insts(&self) -> u64 {
        self.total_insts
    }

    /// Instructions simulated in detail (Table III "Detail").
    pub fn detailed_insts(&self) -> u64 {
        self.points.iter().map(|p| p.len).sum()
    }

    /// Instructions merely fast-forwarded: everything before the last
    /// point's end that is not detailed (Table III "Functional").
    pub fn functional_insts(&self) -> u64 {
        self.last_end() - self.detailed_insts()
    }

    /// Instructions after the last point, which are never executed at
    /// all.
    pub fn skipped_insts(&self) -> u64 {
        self.total_insts - self.last_end()
    }

    /// End of the last simulation point.
    pub fn last_end(&self) -> u64 {
        self.points.last().map(|p| p.end()).unwrap_or(0)
    }

    /// Detailed fraction of the trace, in `[0, 1]`.
    pub fn detail_fraction(&self) -> f64 {
        self.detailed_insts() as f64 / self.total_insts as f64
    }

    /// Functional fraction of the trace, in `[0, 1]`.
    pub fn functional_fraction(&self) -> f64 {
        self.functional_insts() as f64 / self.total_insts as f64
    }

    /// The paper's "position of the last simulation point".
    pub fn last_position(&self) -> f64 {
        self.last_end() as f64 / self.total_insts as f64
    }

    /// Number of simulation points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the plan has no points (never true for a constructed
    /// plan; exists for API completeness).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean point length in instructions.
    pub fn mean_point_len(&self) -> f64 {
        self.detailed_insts() as f64 / self.points.len() as f64
    }
}

impl fmt::Display for SimulationPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} points, detail {:.2}%, functional {:.2}%, last at {:.1}%",
            self.points.len(),
            self.detail_fraction() * 100.0,
            self.functional_fraction() * 100.0,
            self.last_position() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<PlanPoint> {
        vec![
            PlanPoint { start: 100, len: 50, weight: 0.5 },
            PlanPoint { start: 300, len: 100, weight: 0.5 },
        ]
    }

    #[test]
    fn accounting_partitions_the_trace() {
        let plan = SimulationPlan::new(pts(), 1_000).unwrap();
        assert_eq!(plan.detailed_insts(), 150);
        assert_eq!(plan.functional_insts(), 250); // 0..100 and 150..300
        assert_eq!(plan.skipped_insts(), 600);
        assert_eq!(
            plan.detailed_insts() + plan.functional_insts() + plan.skipped_insts(),
            plan.total_insts()
        );
        assert!((plan.last_position() - 0.4).abs() < 1e-12);
        assert_eq!(plan.mean_point_len(), 75.0);
    }

    #[test]
    fn rejects_overlap() {
        let bad = vec![
            PlanPoint { start: 0, len: 100, weight: 0.5 },
            PlanPoint { start: 50, len: 100, weight: 0.5 },
        ];
        assert!(SimulationPlan::new(bad, 1_000).unwrap_err().contains("overlaps"));
    }

    #[test]
    fn rejects_bad_weights() {
        let bad = vec![PlanPoint { start: 0, len: 10, weight: 0.5 }];
        assert!(SimulationPlan::new(bad, 100).unwrap_err().contains("weights sum"));
        let neg = vec![
            PlanPoint { start: 0, len: 10, weight: 1.5 },
            PlanPoint { start: 20, len: 10, weight: -0.5 },
        ];
        assert!(SimulationPlan::new(neg, 100).is_err());
    }

    #[test]
    fn rejects_out_of_range_and_empty() {
        let oor = vec![PlanPoint { start: 90, len: 20, weight: 1.0 }];
        assert!(SimulationPlan::new(oor, 100).unwrap_err().contains("beyond"));
        let empty = vec![PlanPoint { start: 0, len: 0, weight: 1.0 }];
        assert!(SimulationPlan::new(empty, 100).is_err());
        assert!(SimulationPlan::new(vec![], 100).is_err());
    }

    #[test]
    fn whole_program_plan() {
        let plan =
            SimulationPlan::new(vec![PlanPoint { start: 0, len: 100, weight: 1.0 }], 100).unwrap();
        assert_eq!(plan.detail_fraction(), 1.0);
        assert_eq!(plan.functional_insts(), 0);
        assert_eq!(plan.skipped_insts(), 0);
    }

    #[test]
    fn display_summarises() {
        let plan = SimulationPlan::new(pts(), 1_000).unwrap();
        let s = plan.to_string();
        assert!(s.contains("2 points"));
    }
}
