//! Multi-level sampling (the paper's §IV-B): COASTS first, then
//! fine-grained re-sampling of every coarse simulation point larger
//! than a threshold.
//!
//! The fine points inside a coarse point represent only *that point*,
//! not the whole program, so far fewer are needed than pure fine-grained
//! SimPoint selects — that is where the detailed-simulation savings come
//! from. Weights compose multiplicatively: a fine point with weight `w_f`
//! inside a coarse point of weight `w_c` carries `w_c · w_f` in the
//! whole-program estimate.

use crate::cache::CacheKey;
use crate::coasts::{coasts_with, CoastsConfig, CoastsOutcome};
use crate::pipeline::{ProfilingContext, FINE_INTERVAL, RESAMPLE_THRESHOLD};
use crate::plan::{PlanPoint, SimulationPlan};
use mlpa_phase::interval::FixedLengthProfiler;
use mlpa_phase::simpoint::{select, SimPointConfig, SimPoints};
use mlpa_sim::functional::Warming;
use mlpa_sim::FunctionalSim;
use mlpa_workloads::{CompiledBenchmark, WorkloadStream};

/// Multi-level sampling parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultilevelConfig {
    /// First-level (coarse) parameters.
    pub coasts: CoastsConfig,
    /// Second-level (fine) clustering/selection parameters.
    pub fine: SimPointConfig,
    /// Fine interval length (the paper's 10 M, scaled).
    pub fine_interval: u64,
    /// Re-sample threshold: coarse points larger than this get
    /// re-sampled (the paper's 10 M × Kmax = 300 M, scaled).
    pub threshold: u64,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        MultilevelConfig {
            coasts: CoastsConfig::default(),
            fine: SimPointConfig::fine_10m(),
            fine_interval: FINE_INTERVAL,
            threshold: RESAMPLE_THRESHOLD,
        }
    }
}

/// Diagnostics for one re-sampled coarse point.
#[derive(Debug, Clone, PartialEq)]
pub struct ResampledPoint {
    /// Start of the coarse point in the trace.
    pub coarse_start: u64,
    /// Length of the coarse point.
    pub coarse_len: u64,
    /// The fine selection inside it (starts are relative to
    /// `coarse_start`).
    pub fine: SimPoints,
}

/// Everything multi-level sampling produces for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct MultilevelOutcome {
    /// The executable multi-level plan.
    pub plan: SimulationPlan,
    /// The first-level outcome.
    pub coasts: CoastsOutcome,
    /// Which coarse points were re-sampled, with their fine selections.
    pub resampled: Vec<ResampledPoint>,
}

/// Run multi-level sampling on a compiled benchmark.
///
/// # Errors
///
/// Propagates COASTS errors (no significant cyclic structure / empty
/// trace).
///
/// # Example
///
/// ```
/// use mlpa_core::multilevel::{multilevel, MultilevelConfig};
/// use mlpa_workloads::{suite, CompiledBenchmark};
///
/// let spec = suite::benchmark("lucas").unwrap().scaled(0.05);
/// let cb = CompiledBenchmark::compile(&spec)?;
/// let out = multilevel(&cb, &MultilevelConfig::default())?;
/// // Multi-level detail volume never exceeds the coarse plan's.
/// assert!(out.plan.detailed_insts() <= out.coasts.plan.detailed_insts());
/// # Ok::<(), String>(())
/// ```
pub fn multilevel(
    cb: &CompiledBenchmark,
    cfg: &MultilevelConfig,
) -> Result<MultilevelOutcome, String> {
    let mut ctx = ProfilingContext::new(cb, cfg.coasts.projection, cfg.fine_interval);
    multilevel_with(&mut ctx, cfg)
}

/// [`multilevel`] on a shared [`ProfilingContext`]: the first-level
/// COASTS selection reuses the context's cached passes (so a harness
/// that already ran [`coasts_with`](crate::coasts::coasts_with) pays
/// nothing extra for the first level), and the re-sampling windows
/// reuse the context's projection matrix.
///
/// # Errors
///
/// Same failure modes as [`multilevel`].
pub fn multilevel_with(
    ctx: &mut ProfilingContext<'_>,
    cfg: &MultilevelConfig,
) -> Result<MultilevelOutcome, String> {
    let cache = ctx.cache();
    let key = cache
        .as_ref()
        .map(|_| CacheKey::new().field("spec", ctx.benchmark().spec()).field("multilevel", cfg));
    if let (Some(c), Some(k)) = (&cache, &key) {
        if let Some(out) = c.get::<MultilevelOutcome>(k) {
            return Ok(out);
        }
    }
    let first = coasts_with(ctx, &cfg.coasts)?;
    let _span = mlpa_obs::span("core.select.multilevel");
    let cb = ctx.benchmark();
    let projection = ctx.projection();

    let mut points: Vec<PlanPoint> = Vec::new();
    let mut resampled = Vec::new();

    // One shared pass: coarse points are sorted, so fast-forward and
    // profile each window in trace order.
    let mut stream = WorkloadStream::new(cb);
    let mut func = FunctionalSim::new(cb.program());
    let mut pos = 0u64;

    for cp in first.plan.points() {
        if cp.len <= cfg.threshold {
            points.push(*cp);
            continue;
        }
        // Fast-forward to the coarse point.
        let skip = cp.start.saturating_sub(pos);
        pos += func.fast_forward(&mut stream, skip, &mut (), Warming::None, None);
        // Profile fine intervals inside the window. A profiler holds
        // O(dim) state (it accumulates in projected space), so one per
        // coarse window is cheap even when num_blocks is large.
        let mut prof = FixedLengthProfiler::new(projection, cfg.fine_interval);
        pos += func.fast_forward(&mut stream, cp.len, &mut prof, Warming::None, None);
        let intervals = prof.finish();
        if intervals.is_empty() {
            points.push(*cp);
            continue;
        }
        // The window's first fine interval carries the inter-phase
        // transition (predictor/L1 re-warm after the previous coarse
        // phase) — behaviour that occurs once per window, not per
        // phase. Like COASTS's prologue rule, it is excluded from
        // classification so it can neither be selected as a
        // representative nor skew the weights (its ~1/50 window share
        // is simply fast-forwarded). The exclusion applies whenever a
        // steady-state interval remains to classify — including the
        // exactly-2-interval window, where the second interval alone
        // represents the phase; only a 1-interval window (nothing but
        // transition) is classified as-is.
        let body = if intervals.len() >= 2 { &intervals[1..] } else { &intervals[..] };
        let fine = select(body, &cfg.fine);
        for fp in &fine.points {
            points.push(PlanPoint {
                start: cp.start + fp.start,
                len: fp.len,
                weight: cp.weight * fp.weight,
            });
        }
        resampled.push(ResampledPoint { coarse_start: cp.start, coarse_len: cp.len, fine });
    }
    mlpa_obs::add("core.select.resampled_points", resampled.len() as u64);

    points.sort_by_key(|p| p.start);
    let plan = SimulationPlan::new(points, first.plan.total_insts())?;
    let out = MultilevelOutcome { plan, coasts: first, resampled };
    if let (Some(c), Some(k)) = (&cache, &key) {
        c.put(k, &out);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpa_workloads::spec::{BenchmarkSpec, PhaseSpec, ScriptEntry};

    /// A benchmark whose outer iterations (≈ 500 k) exceed the 300 k
    /// threshold, so every coarse point gets re-sampled.
    fn big_iteration_cb() -> CompiledBenchmark {
        let spec = BenchmarkSpec {
            phases: vec![
                PhaseSpec { name: "a".into(), ..PhaseSpec::default() },
                PhaseSpec { name: "b".into(), ..PhaseSpec::default() },
            ],
            script: (0..8).map(|i| ScriptEntry::new(i % 2, 500_000)).collect(),
            ..BenchmarkSpec::default()
        };
        CompiledBenchmark::compile(&spec).unwrap()
    }

    /// A benchmark with small iterations: nothing to re-sample.
    fn small_iteration_cb() -> CompiledBenchmark {
        let spec = BenchmarkSpec {
            script: vec![ScriptEntry::new(0, 50_000); 8],
            ..BenchmarkSpec::default()
        };
        CompiledBenchmark::compile(&spec).unwrap()
    }

    #[test]
    fn resamples_only_above_threshold() {
        let cfg = MultilevelConfig::default();

        let big = multilevel(&big_iteration_cb(), &cfg).unwrap();
        assert!(!big.resampled.is_empty(), "500k points must be re-sampled");

        let small = multilevel(&small_iteration_cb(), &cfg).unwrap();
        assert!(small.resampled.is_empty(), "50k points stay whole");
        assert_eq!(small.plan, small.coasts.plan, "plan unchanged when nothing re-sampled");
    }

    #[test]
    fn fine_points_stay_inside_their_coarse_point() {
        let out = multilevel(&big_iteration_cb(), &MultilevelConfig::default()).unwrap();
        for r in &out.resampled {
            for fp in &r.fine.points {
                assert!(fp.start + fp.len <= r.coarse_len + 200, "fine point escapes window");
            }
        }
        // Every plan point lies inside some coarse point.
        for p in out.plan.points() {
            let inside = out
                .coasts
                .plan
                .points()
                .iter()
                .any(|cp| p.start >= cp.start && p.start + p.len <= cp.end() + 200);
            assert!(inside, "plan point at {} outside all coarse points", p.start);
        }
    }

    #[test]
    fn weights_compose_to_one() {
        let out = multilevel(&big_iteration_cb(), &MultilevelConfig::default()).unwrap();
        let sum: f64 = out.plan.points().iter().map(|p| p.weight).sum();
        assert!((sum - 1.0).abs() < 1e-6, "weights sum to {sum}");
    }

    #[test]
    fn detail_volume_shrinks_dramatically() {
        let out = multilevel(&big_iteration_cb(), &MultilevelConfig::default()).unwrap();
        assert!(
            out.plan.detailed_insts() * 4 < out.coasts.plan.detailed_insts(),
            "multi-level detail {} vs coarse {}",
            out.plan.detailed_insts(),
            out.coasts.plan.detailed_insts()
        );
    }

    #[test]
    fn functional_no_worse_than_last_coarse_end() {
        let out = multilevel(&big_iteration_cb(), &MultilevelConfig::default()).unwrap();
        assert!(out.plan.last_end() <= out.coasts.plan.last_end() + 200);
    }

    #[test]
    fn threshold_zero_resamples_everything() {
        let cfg = MultilevelConfig { threshold: 0, ..MultilevelConfig::default() };
        let out = multilevel(&small_iteration_cb(), &cfg).unwrap();
        assert_eq!(out.resampled.len(), out.coasts.plan.len());
    }

    #[test]
    fn deterministic() {
        let cfg = MultilevelConfig::default();
        let a = multilevel(&big_iteration_cb(), &cfg).unwrap();
        let b = multilevel(&big_iteration_cb(), &cfg).unwrap();
        assert_eq!(a.plan, b.plan);
    }

    /// Edge case: a coarse point whose length is *exactly* the
    /// threshold is kept whole (`len <= threshold` never re-samples),
    /// and only strictly longer points are broken up. Pinned by running
    /// the same benchmark with the threshold set at, and just below,
    /// the longest coarse point.
    #[test]
    fn coarse_point_exactly_at_threshold_is_kept_whole() {
        let cb = big_iteration_cb();
        let coarse = multilevel(&cb, &MultilevelConfig::default()).unwrap().coasts;
        let max_len = coarse.plan.points().iter().map(|p| p.len).max().unwrap();

        // Threshold equal to the longest point: nothing may re-sample.
        let cfg = MultilevelConfig { threshold: max_len, ..MultilevelConfig::default() };
        let out = multilevel(&cb, &cfg).unwrap();
        assert!(out.resampled.is_empty(), "len == threshold must stay whole");
        assert_eq!(out.plan, out.coasts.plan);
        let sum: f64 = out.plan.points().iter().map(|p| p.weight).sum();
        assert!((sum - 1.0).abs() < 1e-6, "weights sum to {sum}");
        assert!(out.plan.detailed_insts() <= out.coasts.plan.detailed_insts());

        // One instruction below: the longest point crosses the strict
        // `>` boundary and must now be re-sampled.
        let cfg = MultilevelConfig { threshold: max_len - 1, ..MultilevelConfig::default() };
        let out = multilevel(&cb, &cfg).unwrap();
        assert!(
            out.resampled.iter().any(|r| r.coarse_len == max_len),
            "len == threshold + 1 must re-sample"
        );
        assert!(
            out.resampled.iter().all(|r| r.coarse_len > cfg.threshold),
            "only strictly-above-threshold points re-sample"
        );
        let sum: f64 = out.plan.points().iter().map(|p| p.weight).sum();
        assert!((sum - 1.0).abs() < 1e-6, "weights sum to {sum}");
        assert!(out.plan.detailed_insts() <= out.coasts.plan.detailed_insts());
    }

    /// Edge case: a re-sampled coarse point whose tail is shorter than
    /// `fine_interval` (the window length is not a multiple of the fine
    /// grid). The short trailing interval must not break weight
    /// normalisation or the detail-volume bound, and any fine point
    /// selected from it must stay inside the window.
    #[test]
    fn resampled_window_with_short_tail_interval() {
        let cb = big_iteration_cb();
        // 500 k-instruction iterations on a 7 k grid: 71 whole fine
        // intervals plus a ~3 k tail.
        let cfg = MultilevelConfig { fine_interval: 7_000, ..MultilevelConfig::default() };
        let out = multilevel(&cb, &cfg).unwrap();
        assert!(!out.resampled.is_empty(), "500k points must be re-sampled");
        for r in &out.resampled {
            assert!(
                r.coarse_len % cfg.fine_interval != 0,
                "precondition: window of {} must leave a short tail on the {} grid",
                r.coarse_len,
                cfg.fine_interval
            );
            for fp in &r.fine.points {
                // Intervals are cut at block boundaries, so a point may
                // overshoot the grid by at most one block.
                assert!(fp.len <= cfg.fine_interval + 200, "fine point longer than the grid");
                assert!(fp.start + fp.len <= r.coarse_len + 200, "fine point escapes window");
            }
        }
        let sum: f64 = out.plan.points().iter().map(|p| p.weight).sum();
        assert!((sum - 1.0).abs() < 1e-6, "weights sum to {sum}");
        assert!(out.plan.detailed_insts() <= out.coasts.plan.detailed_insts());
    }

    /// Regression: a re-sampled window holding *exactly two* fine
    /// intervals must still exclude the transition-carrying first
    /// interval from classification — the phase representative is the
    /// steady-state second interval, never the window start. (The
    /// exclusion used to require three or more intervals, letting the
    /// two-interval window select its own inter-phase transition.)
    #[test]
    fn two_interval_window_excludes_transition() {
        let spec = BenchmarkSpec {
            script: vec![ScriptEntry::new(0, 30_000); 6],
            ..BenchmarkSpec::default()
        };
        let cb = CompiledBenchmark::compile(&spec).unwrap();
        let cfg =
            MultilevelConfig { fine_interval: 20_000, threshold: 0, ..MultilevelConfig::default() };
        let out = multilevel(&cb, &cfg).unwrap();
        assert!(!out.resampled.is_empty(), "threshold 0 must re-sample");
        for r in &out.resampled {
            // Precondition this regression pins: each ~30 k iteration
            // splits into exactly two fine intervals on the 20 k grid.
            assert!(r.coarse_len > cfg.fine_interval, "window of {} too small", r.coarse_len);
            assert!(r.coarse_len < 3 * cfg.fine_interval, "window of {} too big", r.coarse_len);
            for fp in &r.fine.points {
                assert!(fp.start > 0, "transition interval selected at window start");
            }
        }
    }
}
