//! Shared plumbing: projection settings, profiling passes, and the
//! fine-grained (SimPoint-baseline) plan builder.

use crate::plan::{PlanPoint, SimulationPlan};
use mlpa_phase::interval::{FixedLengthProfiler, Interval};
use mlpa_phase::project::RandomProjection;
use mlpa_phase::simpoint::{select, SimPointConfig, SimPoints};
use mlpa_sim::FunctionalSim;
use mlpa_workloads::{CompiledBenchmark, WorkloadStream};

/// The scaled fine-grained interval length: the paper's 10 M
/// instructions at the repo's 1000× scale-down.
pub const FINE_INTERVAL: u64 = 10_000;

/// The scaled multi-level re-sampling threshold: the paper's
/// 10 M × Kmax(30) = 300 M instructions, scaled.
pub const RESAMPLE_THRESHOLD: u64 = 300_000;

/// Random-projection settings shared by all profiling passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProjectionSettings {
    /// Output dimensionality (SimPoint uses 15).
    pub dim: usize,
    /// Seed of the projection matrix.
    pub seed: u64,
}

impl Default for ProjectionSettings {
    fn default() -> Self {
        ProjectionSettings { dim: mlpa_phase::project::DEFAULT_DIM, seed: 0x5349_4D50 }
    }
}

impl ProjectionSettings {
    /// Materialise the projection for a benchmark's program.
    pub fn build(&self, cb: &CompiledBenchmark) -> RandomProjection {
        RandomProjection::new(cb.program().num_blocks(), self.dim, self.seed)
    }
}

/// Profile a benchmark into fixed-length intervals (one functional
/// pass).
pub fn profile_fixed(
    cb: &CompiledBenchmark,
    interval_len: u64,
    proj: &RandomProjection,
) -> Vec<Interval> {
    let mut prof = FixedLengthProfiler::new(proj, interval_len);
    FunctionalSim::new(cb.program()).run(WorkloadStream::new(cb), &mut prof);
    prof.finish()
}

/// Convert selected simulation points into an executable plan.
///
/// # Errors
///
/// Propagates [`SimulationPlan::new`]'s validation errors (they indicate
/// a profiler or selector bug, not user error).
pub fn plan_from_points(sp: &SimPoints) -> Result<SimulationPlan, String> {
    let points = sp
        .points
        .iter()
        .map(|p| PlanPoint { start: p.start, len: p.len, weight: p.weight })
        .collect();
    SimulationPlan::new(points, sp.total_insts)
}

/// Outcome of a fine-grained (SimPoint-baseline) selection.
#[derive(Debug, Clone, PartialEq)]
pub struct FineOutcome {
    /// The executable plan.
    pub plan: SimulationPlan,
    /// The raw selection (clusters, BIC diagnostics).
    pub simpoints: SimPoints,
    /// Interval length used.
    pub interval_len: u64,
}

/// The paper's baseline: fixed-length SimPoint (10 M-equivalent
/// intervals, `Kmax = 30`).
///
/// # Errors
///
/// Returns an error if the trace is empty (a spec that generates no
/// instructions).
///
/// # Example
///
/// ```
/// use mlpa_core::pipeline::{simpoint_baseline, ProjectionSettings, FINE_INTERVAL};
/// use mlpa_phase::simpoint::SimPointConfig;
/// use mlpa_workloads::{spec::BenchmarkSpec, CompiledBenchmark};
///
/// let cb = CompiledBenchmark::compile(&BenchmarkSpec::default())?;
/// let out = simpoint_baseline(
///     &cb,
///     FINE_INTERVAL,
///     &SimPointConfig::fine_10m(),
///     &ProjectionSettings::default(),
/// )?;
/// assert!(out.plan.len() >= 1);
/// # Ok::<(), String>(())
/// ```
pub fn simpoint_baseline(
    cb: &CompiledBenchmark,
    interval_len: u64,
    cfg: &SimPointConfig,
    proj: &ProjectionSettings,
) -> Result<FineOutcome, String> {
    let projection = proj.build(cb);
    let intervals = profile_fixed(cb, interval_len, &projection);
    if intervals.is_empty() {
        return Err(format!("benchmark {} produced an empty trace", cb.spec().name));
    }
    let simpoints = select(&intervals, cfg);
    let plan = plan_from_points(&simpoints)?;
    Ok(FineOutcome { plan, simpoints, interval_len })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpa_workloads::spec::{BenchmarkSpec, PhaseSpec, ScriptEntry};

    fn two_phase_cb() -> CompiledBenchmark {
        let spec = BenchmarkSpec {
            phases: vec![
                PhaseSpec { name: "a".into(), ..PhaseSpec::default() },
                PhaseSpec { name: "b".into(), ..PhaseSpec::default() },
            ],
            script: (0..8).map(|i| ScriptEntry::new(i % 2, 50_000)).collect(),
            ..BenchmarkSpec::default()
        };
        CompiledBenchmark::compile(&spec).unwrap()
    }

    #[test]
    fn baseline_produces_valid_plan() {
        let cb = two_phase_cb();
        let out = simpoint_baseline(
            &cb,
            FINE_INTERVAL,
            &mlpa_phase::simpoint::SimPointConfig::fine_10m(),
            &ProjectionSettings::default(),
        )
        .unwrap();
        assert!(out.plan.len() >= 2, "two phases need at least two points");
        assert!(out.plan.detail_fraction() < 0.5);
        // Fine plan points are one interval long (the trailing partial
        // interval may be shorter).
        let total = out.plan.total_insts();
        for p in out.plan.points() {
            assert!(p.len < FINE_INTERVAL + 200);
            assert!(p.len >= FINE_INTERVAL || p.end() == total, "short non-final point");
        }
    }

    #[test]
    fn scaled_constants_match_paper_ratios() {
        // 10 M / 1000 and 10 M × 30 / 1000.
        assert_eq!(FINE_INTERVAL, 10_000);
        assert_eq!(RESAMPLE_THRESHOLD, 30 * FINE_INTERVAL);
    }

    #[test]
    fn projection_settings_are_stable() {
        let cb = two_phase_cb();
        let a = ProjectionSettings::default().build(&cb);
        let b = ProjectionSettings::default().build(&cb);
        let raw = vec![1.0; cb.program().num_blocks()];
        assert_eq!(a.project(&raw), b.project(&raw));
    }

    #[test]
    fn plan_matches_simpoints_accounting() {
        let cb = two_phase_cb();
        let out = simpoint_baseline(
            &cb,
            FINE_INTERVAL,
            &mlpa_phase::simpoint::SimPointConfig::fine_10m(),
            &ProjectionSettings::default(),
        )
        .unwrap();
        assert_eq!(out.plan.detailed_insts(), out.simpoints.detailed_insts());
        assert!((out.plan.last_position() - out.simpoints.last_position()).abs() < 1e-12);
    }
}
