//! Shared plumbing: projection settings, profiling passes, and the
//! fine-grained (SimPoint-baseline) plan builder.

use std::sync::Arc;

use crate::artifact::BoundaryArtifact;
use crate::cache::{ArtifactCache, CacheKey};
use crate::plan::{PlanPoint, SimulationPlan};
use mlpa_phase::interval::{BoundaryProfiler, FixedLengthProfiler, Interval};
use mlpa_phase::loops::{LoopMonitor, LoopProfile};
use mlpa_phase::project::RandomProjection;
use mlpa_phase::simpoint::{select, SimPointConfig, SimPoints};
use mlpa_sim::FunctionalSim;
use mlpa_workloads::{CompiledBenchmark, WorkloadStream};

/// The scaled fine-grained interval length: the paper's 10 M
/// instructions at the repo's 1000× scale-down.
pub const FINE_INTERVAL: u64 = 10_000;

/// The scaled multi-level re-sampling threshold: the paper's
/// 10 M × Kmax(30) = 300 M instructions, scaled.
pub const RESAMPLE_THRESHOLD: u64 = 300_000;

/// Random-projection settings shared by all profiling passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProjectionSettings {
    /// Output dimensionality (SimPoint uses 15).
    pub dim: usize,
    /// Seed of the projection matrix.
    pub seed: u64,
}

impl Default for ProjectionSettings {
    fn default() -> Self {
        ProjectionSettings { dim: mlpa_phase::project::DEFAULT_DIM, seed: 0x5349_4D50 }
    }
}

impl ProjectionSettings {
    /// Materialise the projection for a benchmark's program.
    pub fn build(&self, cb: &CompiledBenchmark) -> RandomProjection {
        RandomProjection::new(cb.program().num_blocks(), self.dim, self.seed)
    }
}

/// Cached products of one boundary-profiling pass.
#[derive(Debug, Clone)]
struct BoundaryPass {
    header: mlpa_isa::BlockId,
    has_prologue: bool,
    intervals: Vec<Interval>,
}

/// Shared profiling context: one projection and a cache of every
/// whole-trace functional pass over a benchmark, so the three sampling
/// stages (fine baseline, COASTS, multi-level) stop re-streaming the
/// trace for information an earlier stage already collected.
///
/// The experiment harness previously ran **five** full functional
/// passes per benchmark: fine-interval profiling, COASTS's loop pass,
/// COASTS's boundary pass, and then both COASTS passes *again* inside
/// `multilevel`. With a context, [`ProfilingContext::prepare`] collects
/// the loop profile and the fine intervals in a single combined pass
/// (observers compose, so both profilers ride the same stream
/// traversal), the boundary pass runs once, and every stage reuses the
/// results — two full passes total.
///
/// # Example
///
/// ```
/// use mlpa_core::coasts::{coasts_with, CoastsConfig};
/// use mlpa_core::pipeline::{ProfilingContext, FINE_INTERVAL};
/// use mlpa_workloads::{spec::BenchmarkSpec, CompiledBenchmark};
///
/// let cb = CompiledBenchmark::compile(&BenchmarkSpec::default())?;
/// let mut ctx = ProfilingContext::new(&cb, Default::default(), FINE_INTERVAL);
/// ctx.prepare();
/// let out = coasts_with(&mut ctx, &CoastsConfig::default())?;
/// assert!(out.plan.len() >= 1);
/// # Ok::<(), String>(())
/// ```
#[derive(Debug)]
pub struct ProfilingContext<'b> {
    cb: &'b CompiledBenchmark,
    settings: ProjectionSettings,
    projection: RandomProjection,
    fine_interval: u64,
    loop_profile: Option<LoopProfile>,
    fine_intervals: Option<Vec<Interval>>,
    boundary: Option<BoundaryPass>,
    cache: Option<Arc<ArtifactCache>>,
}

impl<'b> ProfilingContext<'b> {
    /// Create an empty context for `cb`; `fine_interval` is the length
    /// used by [`ProfilingContext::fine_intervals`].
    pub fn new(
        cb: &'b CompiledBenchmark,
        settings: ProjectionSettings,
        fine_interval: u64,
    ) -> ProfilingContext<'b> {
        ProfilingContext {
            cb,
            settings,
            projection: settings.build(cb),
            fine_interval,
            loop_profile: None,
            fine_intervals: None,
            boundary: None,
            cache: None,
        }
    }

    /// Attach an artifact cache: every profiling pass first consults it
    /// and stores its product after computing. A warm cache makes all
    /// of this context's passes no-ops.
    pub fn set_cache(&mut self, cache: Arc<ArtifactCache>) {
        self.cache = Some(cache);
    }

    /// The attached artifact cache, if any.
    pub fn cache(&self) -> Option<Arc<ArtifactCache>> {
        self.cache.clone()
    }

    /// The benchmark this context profiles.
    pub fn benchmark(&self) -> &'b CompiledBenchmark {
        self.cb
    }

    fn loop_key(&self) -> CacheKey {
        // The loop profile depends only on the trace, not on the
        // projection or interval length.
        CacheKey::new().field("spec", self.cb.spec())
    }

    fn fine_key(&self) -> CacheKey {
        CacheKey::new()
            .field("spec", self.cb.spec())
            .field("projection", &self.settings)
            .field("interval", &self.fine_interval)
    }

    fn boundary_key(&self, header: mlpa_isa::BlockId) -> CacheKey {
        CacheKey::new()
            .field("spec", self.cb.spec())
            .field("projection", &self.settings)
            .field("header", &header.raw())
    }

    /// The shared projection matrix.
    pub fn projection(&self) -> &RandomProjection {
        &self.projection
    }

    /// The projection settings the context was built with.
    pub fn settings(&self) -> ProjectionSettings {
        self.settings
    }

    /// Run the combined base pass eagerly: the loop monitor and the
    /// fine-interval profiler share a single trace traversal. Call this
    /// when both products will be needed (as the experiment harness
    /// does); otherwise the lazy getters each run their own pass on
    /// first use.
    pub fn prepare(&mut self) {
        if self.loop_profile.is_some() && self.fine_intervals.is_some() {
            return;
        }
        if let Some(cache) = &self.cache {
            if self.loop_profile.is_none() {
                self.loop_profile = cache.get::<LoopProfile>(&self.loop_key());
            }
            if self.fine_intervals.is_none() {
                self.fine_intervals = cache.get::<Vec<Interval>>(&self.fine_key());
            }
            if self.loop_profile.is_some() && self.fine_intervals.is_some() {
                return;
            }
        }
        let _span = mlpa_obs::span("core.profile.base_pass");
        mlpa_obs::add("core.profile.base_passes", 1);
        let mut monitor = LoopMonitor::new(self.cb.program());
        // The profiler accumulates in the projected space (O(dim) state
        // and O(dim) per flush, independent of num_blocks), so carrying
        // it alongside the loop monitor adds little to the pass.
        let mut prof = FixedLengthProfiler::new(&self.projection, self.fine_interval);
        FunctionalSim::new(self.cb.program())
            .run(WorkloadStream::new(self.cb), &mut (&mut monitor, &mut prof));
        let profile = monitor.finish();
        let intervals = prof.finish();
        if let Some(cache) = &self.cache {
            cache.put(&self.loop_key(), &profile);
            cache.put(&self.fine_key(), &intervals);
        }
        self.loop_profile = Some(profile);
        self.fine_intervals = Some(intervals);
    }

    /// The loop (cyclic-structure) profile of the trace.
    pub fn loop_profile(&mut self) -> &LoopProfile {
        if self.loop_profile.is_none() {
            if let Some(cache) = &self.cache {
                self.loop_profile = cache.get::<LoopProfile>(&self.loop_key());
            }
        }
        if self.loop_profile.is_none() {
            let _span = mlpa_obs::span("core.profile.loop_pass");
            mlpa_obs::add("core.profile.loop_passes", 1);
            let mut monitor = LoopMonitor::new(self.cb.program());
            FunctionalSim::new(self.cb.program()).run(WorkloadStream::new(self.cb), &mut monitor);
            let profile = monitor.finish();
            if let Some(cache) = &self.cache {
                cache.put(&self.loop_key(), &profile);
            }
            self.loop_profile = Some(profile);
        }
        self.loop_profile.as_ref().expect("just computed")
    }

    /// Fixed-length intervals at the context's fine interval length.
    pub fn fine_intervals(&mut self) -> &[Interval] {
        if self.fine_intervals.is_none() {
            if let Some(cache) = &self.cache {
                self.fine_intervals = cache.get::<Vec<Interval>>(&self.fine_key());
            }
        }
        if self.fine_intervals.is_none() {
            let intervals = profile_fixed(self.cb, self.fine_interval, &self.projection);
            if let Some(cache) = &self.cache {
                cache.put(&self.fine_key(), &intervals);
            }
            self.fine_intervals = Some(intervals);
        }
        self.fine_intervals.as_ref().expect("just computed")
    }

    /// Variable-length intervals cut at iterations of the cyclic
    /// structure headed by `header`, plus whether the trace has a
    /// prologue before the first header entry. Cached per header.
    pub fn boundary_intervals(&mut self, header: mlpa_isa::BlockId) -> (&[Interval], bool) {
        let stale = self.boundary.as_ref().is_none_or(|b| b.header != header);
        if stale {
            if let Some(cache) = &self.cache {
                if let Some(b) = cache.get::<BoundaryArtifact>(&self.boundary_key(header)) {
                    self.boundary = Some(BoundaryPass {
                        header: mlpa_isa::BlockId::new(b.header),
                        has_prologue: b.has_prologue,
                        intervals: b.intervals,
                    });
                }
            }
        }
        let stale = self.boundary.as_ref().is_none_or(|b| b.header != header);
        if stale {
            let _span = mlpa_obs::span("core.profile.boundary_pass");
            mlpa_obs::add("core.profile.boundary_passes", 1);
            let mut prof = BoundaryProfiler::new(&self.projection, header);
            FunctionalSim::new(self.cb.program()).run(WorkloadStream::new(self.cb), &mut prof);
            let has_prologue = prof.has_prologue();
            let intervals = prof.finish();
            if let Some(cache) = &self.cache {
                cache.put(
                    &self.boundary_key(header),
                    &BoundaryArtifact {
                        header: header.raw(),
                        has_prologue,
                        intervals: intervals.clone(),
                    },
                );
            }
            self.boundary = Some(BoundaryPass { header, has_prologue, intervals });
        }
        let b = self.boundary.as_ref().expect("just computed");
        (&b.intervals, b.has_prologue)
    }
}

/// Measure a benchmark's exact trace length (total instruction count)
/// with one functional drain of the stream. `CompiledBenchmark` does
/// not record this statically, so plan/trace compatibility checks (see
/// [`crate::estimate::execute_plan_checked`]) measure it here.
pub fn trace_insts(cb: &CompiledBenchmark) -> u64 {
    let _span = mlpa_obs::span("core.profile.trace_len");
    FunctionalSim::new(cb.program()).run(WorkloadStream::new(cb), &mut ()).instructions
}

/// Profile a benchmark into fixed-length intervals (one functional
/// pass).
pub fn profile_fixed(
    cb: &CompiledBenchmark,
    interval_len: u64,
    proj: &RandomProjection,
) -> Vec<Interval> {
    let mut prof = FixedLengthProfiler::new(proj, interval_len);
    FunctionalSim::new(cb.program()).run(WorkloadStream::new(cb), &mut prof);
    prof.finish()
}

/// Convert selected simulation points into an executable plan.
///
/// # Errors
///
/// Propagates [`SimulationPlan::new`]'s validation errors (they indicate
/// a profiler or selector bug, not user error).
pub fn plan_from_points(sp: &SimPoints) -> Result<SimulationPlan, String> {
    let points = sp
        .points
        .iter()
        .map(|p| PlanPoint { start: p.start, len: p.len, weight: p.weight })
        .collect();
    SimulationPlan::new(points, sp.total_insts)
}

/// Outcome of a fine-grained (SimPoint-baseline) selection.
#[derive(Debug, Clone, PartialEq)]
pub struct FineOutcome {
    /// The executable plan.
    pub plan: SimulationPlan,
    /// The raw selection (clusters, BIC diagnostics).
    pub simpoints: SimPoints,
    /// Interval length used.
    pub interval_len: u64,
}

/// The paper's baseline: fixed-length SimPoint (10 M-equivalent
/// intervals, `Kmax = 30`).
///
/// # Errors
///
/// Returns an error if the trace is empty (a spec that generates no
/// instructions).
///
/// # Example
///
/// ```
/// use mlpa_core::pipeline::{simpoint_baseline, ProjectionSettings, FINE_INTERVAL};
/// use mlpa_phase::simpoint::SimPointConfig;
/// use mlpa_workloads::{spec::BenchmarkSpec, CompiledBenchmark};
///
/// let cb = CompiledBenchmark::compile(&BenchmarkSpec::default())?;
/// let out = simpoint_baseline(
///     &cb,
///     FINE_INTERVAL,
///     &SimPointConfig::fine_10m(),
///     &ProjectionSettings::default(),
/// )?;
/// assert!(out.plan.len() >= 1);
/// # Ok::<(), String>(())
/// ```
pub fn simpoint_baseline(
    cb: &CompiledBenchmark,
    interval_len: u64,
    cfg: &SimPointConfig,
    proj: &ProjectionSettings,
) -> Result<FineOutcome, String> {
    let mut ctx = ProfilingContext::new(cb, *proj, interval_len);
    simpoint_baseline_with(&mut ctx, cfg)
}

/// [`simpoint_baseline`] on a shared [`ProfilingContext`]: reuses (or
/// populates) the context's fine-interval profile instead of running a
/// dedicated functional pass. The interval length is the context's.
///
/// # Errors
///
/// Returns an error if the trace is empty (a spec that generates no
/// instructions).
pub fn simpoint_baseline_with(
    ctx: &mut ProfilingContext<'_>,
    cfg: &SimPointConfig,
) -> Result<FineOutcome, String> {
    let _span = mlpa_obs::span("core.select.fine");
    let cache = ctx.cache();
    let key = cache.as_ref().map(|_| ctx.fine_key().field("selection", cfg));
    if let (Some(c), Some(k)) = (&cache, &key) {
        if let Some(out) = c.get::<FineOutcome>(k) {
            return Ok(out);
        }
    }
    let interval_len = ctx.fine_interval;
    let intervals = ctx.fine_intervals();
    if intervals.is_empty() {
        return Err(format!("benchmark {} produced an empty trace", ctx.cb.spec().name));
    }
    mlpa_obs::add("core.profile.fine_intervals", intervals.len() as u64);
    let simpoints = select(intervals, cfg);
    let plan = plan_from_points(&simpoints)?;
    let out = FineOutcome { plan, simpoints, interval_len };
    if let (Some(c), Some(k)) = (&cache, &key) {
        c.put(k, &out);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpa_workloads::spec::{BenchmarkSpec, PhaseSpec, ScriptEntry};

    fn two_phase_cb() -> CompiledBenchmark {
        let spec = BenchmarkSpec {
            phases: vec![
                PhaseSpec { name: "a".into(), ..PhaseSpec::default() },
                PhaseSpec { name: "b".into(), ..PhaseSpec::default() },
            ],
            script: (0..8).map(|i| ScriptEntry::new(i % 2, 50_000)).collect(),
            ..BenchmarkSpec::default()
        };
        CompiledBenchmark::compile(&spec).unwrap()
    }

    #[test]
    fn baseline_produces_valid_plan() {
        let cb = two_phase_cb();
        let out = simpoint_baseline(
            &cb,
            FINE_INTERVAL,
            &mlpa_phase::simpoint::SimPointConfig::fine_10m(),
            &ProjectionSettings::default(),
        )
        .unwrap();
        assert!(out.plan.len() >= 2, "two phases need at least two points");
        assert!(out.plan.detail_fraction() < 0.5);
        // Fine plan points are one interval long (the trailing partial
        // interval may be shorter).
        let total = out.plan.total_insts();
        for p in out.plan.points() {
            assert!(p.len < FINE_INTERVAL + 200);
            assert!(p.len >= FINE_INTERVAL || p.end() == total, "short non-final point");
        }
    }

    #[test]
    fn scaled_constants_match_paper_ratios() {
        // 10 M / 1000 and 10 M × 30 / 1000.
        assert_eq!(FINE_INTERVAL, 10_000);
        assert_eq!(RESAMPLE_THRESHOLD, 30 * FINE_INTERVAL);
    }

    #[test]
    fn projection_settings_are_stable() {
        let cb = two_phase_cb();
        let a = ProjectionSettings::default().build(&cb);
        let b = ProjectionSettings::default().build(&cb);
        let raw = vec![1.0; cb.program().num_blocks()];
        assert_eq!(a.project(&raw), b.project(&raw));
    }

    #[test]
    fn plan_matches_simpoints_accounting() {
        let cb = two_phase_cb();
        let out = simpoint_baseline(
            &cb,
            FINE_INTERVAL,
            &mlpa_phase::simpoint::SimPointConfig::fine_10m(),
            &ProjectionSettings::default(),
        )
        .unwrap();
        assert_eq!(out.plan.detailed_insts(), out.simpoints.detailed_insts());
        assert!((out.plan.last_position() - out.simpoints.last_position()).abs() < 1e-12);
    }
}
