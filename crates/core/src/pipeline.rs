//! Shared plumbing: projection settings, profiling passes, and the
//! fine-grained (SimPoint-baseline) plan builder.

use std::sync::Arc;

use crate::artifact::{BoundaryArtifact, BoundaryShardArtifact, ProfileShardArtifact};
use crate::cache::{ArtifactCache, CacheKey};
use crate::plan::{PlanPoint, SimulationPlan};
use mlpa_isa::stream::InstructionStream;
use mlpa_phase::interval::{BoundaryProfiler, FixedLengthProfiler, Interval};
use mlpa_phase::loops::{LoopMonitor, LoopProfile};
use mlpa_phase::project::RandomProjection;
use mlpa_phase::shard::{
    merge_boundary, merge_fine, merge_loops, BoundaryTracker, FineCutTracker, LoopStackTracker,
    ShardBoundaryProfiler, ShardFineProfiler, ShardLoopMonitor,
};
use mlpa_phase::simpoint::{select, SimPointConfig, SimPoints};
use mlpa_sim::FunctionalSim;
use mlpa_workloads::{CompiledBenchmark, WorkloadStream};

/// The scaled fine-grained interval length: the paper's 10 M
/// instructions at the repo's 1000× scale-down.
pub const FINE_INTERVAL: u64 = 10_000;

/// The scaled multi-level re-sampling threshold: the paper's
/// 10 M × Kmax(30) = 300 M instructions, scaled.
pub const RESAMPLE_THRESHOLD: u64 = 300_000;

/// Random-projection settings shared by all profiling passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProjectionSettings {
    /// Output dimensionality (SimPoint uses 15).
    pub dim: usize,
    /// Seed of the projection matrix.
    pub seed: u64,
}

impl Default for ProjectionSettings {
    fn default() -> Self {
        ProjectionSettings { dim: mlpa_phase::project::DEFAULT_DIM, seed: 0x5349_4D50 }
    }
}

impl ProjectionSettings {
    /// Materialise the projection for a benchmark's program.
    pub fn build(&self, cb: &CompiledBenchmark) -> RandomProjection {
        RandomProjection::new(cb.program().num_blocks(), self.dim, self.seed)
    }
}

/// How a sharded profiling pass schedules its segments.
///
/// Both drivers produce bit-identical artifacts and merges; they differ
/// only in wall-clock shape:
///
/// * [`ShardDriver::Chained`] streams the trace **once** on the calling
///   thread, handing consecutive segments to freshly seeded shard
///   profilers — no prefix replay, so total work is one metadata walk
///   plus the (cheap, O(1)-per-block) shard profilers.
/// * [`ShardDriver::Threaded`] runs every segment on its own scoped
///   thread; each worker fast-forwards through its prefix with the
///   metadata walk and profiles only its slice. Wall-clock is the
///   longest single shard (≈ one metadata walk for the last segment),
///   with the profiling work and any cache hits overlapped across
///   cores.
/// * [`ShardDriver::Auto`] (the default) picks `Threaded` when the
///   machine reports more than one available core, `Chained` otherwise
///   — on a single core prefix replay costs ~`shards/2` extra walks
///   for nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardDriver {
    /// Decide from `std::thread::available_parallelism()`.
    #[default]
    Auto,
    /// Single-threaded, single-pass segment chaining.
    Chained,
    /// One scoped worker thread per segment with prefix fast-forward.
    Threaded,
}

impl ShardDriver {
    /// Resolve `Auto` against the machine's available parallelism.
    fn threaded(self) -> bool {
        match self {
            ShardDriver::Chained => false,
            ShardDriver::Threaded => true,
            ShardDriver::Auto => std::thread::available_parallelism().map_or(1, |n| n.get()) > 1,
        }
    }
}

/// Cached products of one boundary-profiling pass.
#[derive(Debug, Clone)]
struct BoundaryPass {
    header: mlpa_isa::BlockId,
    has_prologue: bool,
    intervals: Vec<Interval>,
}

/// Shared profiling context: one projection and a cache of every
/// whole-trace functional pass over a benchmark, so the three sampling
/// stages (fine baseline, COASTS, multi-level) stop re-streaming the
/// trace for information an earlier stage already collected.
///
/// The experiment harness previously ran **five** full functional
/// passes per benchmark: fine-interval profiling, COASTS's loop pass,
/// COASTS's boundary pass, and then both COASTS passes *again* inside
/// `multilevel`. With a context, [`ProfilingContext::prepare`] collects
/// the loop profile and the fine intervals in a single combined pass
/// (observers compose, so both profilers ride the same stream
/// traversal), the boundary pass runs once, and every stage reuses the
/// results — two full passes total.
///
/// # Example
///
/// ```
/// use mlpa_core::coasts::{coasts_with, CoastsConfig};
/// use mlpa_core::pipeline::{ProfilingContext, FINE_INTERVAL};
/// use mlpa_workloads::{spec::BenchmarkSpec, CompiledBenchmark};
///
/// let cb = CompiledBenchmark::compile(&BenchmarkSpec::default())?;
/// let mut ctx = ProfilingContext::new(&cb, Default::default(), FINE_INTERVAL);
/// ctx.prepare();
/// let out = coasts_with(&mut ctx, &CoastsConfig::default())?;
/// assert!(out.plan.len() >= 1);
/// # Ok::<(), String>(())
/// ```
#[derive(Debug)]
pub struct ProfilingContext<'b> {
    cb: &'b CompiledBenchmark,
    settings: ProjectionSettings,
    projection: RandomProjection,
    fine_interval: u64,
    loop_profile: Option<LoopProfile>,
    fine_intervals: Option<Vec<Interval>>,
    boundary: Option<BoundaryPass>,
    cache: Option<Arc<ArtifactCache>>,
    /// Segment shards for the profiling passes (1 = monolithic).
    shards: usize,
    /// How sharded passes schedule their segments.
    driver: ShardDriver,
}

impl<'b> ProfilingContext<'b> {
    /// Create an empty context for `cb`; `fine_interval` is the length
    /// used by [`ProfilingContext::fine_intervals`].
    pub fn new(
        cb: &'b CompiledBenchmark,
        settings: ProjectionSettings,
        fine_interval: u64,
    ) -> ProfilingContext<'b> {
        ProfilingContext {
            cb,
            settings,
            projection: settings.build(cb),
            fine_interval,
            loop_profile: None,
            fine_intervals: None,
            boundary: None,
            cache: None,
            shards: 1,
            driver: ShardDriver::Auto,
        }
    }

    /// Split the profiling passes into `shards` trace segments run on
    /// worker threads (1 = the monolithic single-thread pass). The
    /// merged output is bit-identical to the monolithic pass — pinned
    /// by `sharded_profiling.rs` and the `mlpa-phase` property tests —
    /// so this is purely a wall-clock/streaming lever: each worker
    /// fast-forwards to its segment with the metadata walk (no
    /// instruction materialisation) and profiles only its slice.
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = shards.max(1);
    }

    /// Override how sharded passes schedule their segments (default:
    /// [`ShardDriver::Auto`]). Scheduling never changes results — both
    /// drivers emit identical per-shard artifacts and merges.
    pub fn set_shard_driver(&mut self, driver: ShardDriver) {
        self.driver = driver;
    }

    /// Attach an artifact cache: every profiling pass first consults it
    /// and stores its product after computing. A warm cache makes all
    /// of this context's passes no-ops.
    pub fn set_cache(&mut self, cache: Arc<ArtifactCache>) {
        self.cache = Some(cache);
    }

    /// The attached artifact cache, if any.
    pub fn cache(&self) -> Option<Arc<ArtifactCache>> {
        self.cache.clone()
    }

    /// The benchmark this context profiles.
    pub fn benchmark(&self) -> &'b CompiledBenchmark {
        self.cb
    }

    fn loop_key(&self) -> CacheKey {
        // The loop profile depends only on the trace, not on the
        // projection or interval length.
        CacheKey::new().field("spec", self.cb.spec())
    }

    fn fine_key(&self) -> CacheKey {
        CacheKey::new()
            .field("spec", self.cb.spec())
            .field("projection", &self.settings)
            .field("interval", &self.fine_interval)
    }

    fn boundary_key(&self, header: mlpa_isa::BlockId) -> CacheKey {
        CacheKey::new()
            .field("spec", self.cb.spec())
            .field("projection", &self.settings)
            .field("header", &header.raw())
    }

    /// Key of one segment shard of the combined pass. The shard count
    /// is part of the key: segment boundaries derive from it, so shards
    /// of different partitions are not interchangeable (their *merge*
    /// is identical, their pieces are not).
    fn profile_shard_key(&self, shards: usize, k: usize) -> CacheKey {
        self.fine_key().field("shards", &shards).field("shard", &k)
    }

    fn boundary_shard_key(&self, header: mlpa_isa::BlockId, shards: usize, k: usize) -> CacheKey {
        self.boundary_key(header).field("shards", &shards).field("shard", &k)
    }

    /// The shared projection matrix.
    pub fn projection(&self) -> &RandomProjection {
        &self.projection
    }

    /// The projection settings the context was built with.
    pub fn settings(&self) -> ProjectionSettings {
        self.settings
    }

    /// Run the combined base pass eagerly: the loop monitor and the
    /// fine-interval profiler share a single trace traversal. Call this
    /// when both products will be needed (as the experiment harness
    /// does); otherwise the lazy getters each run their own pass on
    /// first use.
    pub fn prepare(&mut self) {
        if self.loop_profile.is_some() && self.fine_intervals.is_some() {
            return;
        }
        if let Some(cache) = &self.cache {
            if self.loop_profile.is_none() {
                self.loop_profile = cache.get::<LoopProfile>(&self.loop_key());
            }
            if self.fine_intervals.is_none() {
                self.fine_intervals = cache.get::<Vec<Interval>>(&self.fine_key());
            }
            if self.loop_profile.is_some() && self.fine_intervals.is_some() {
                return;
            }
        }
        if self.shards > 1 {
            self.prepare_sharded();
            return;
        }
        let _span = mlpa_obs::span("core.profile.base_pass");
        mlpa_obs::add("core.profile.base_passes", 1);
        let mut monitor = LoopMonitor::new(self.cb.program());
        // The profiler accumulates in the projected space (O(dim) state
        // and O(dim) per flush, independent of num_blocks), so carrying
        // it alongside the loop monitor adds little to the pass.
        let mut prof = FixedLengthProfiler::new(&self.projection, self.fine_interval);
        FunctionalSim::new(self.cb.program())
            .run(WorkloadStream::new(self.cb), &mut (&mut monitor, &mut prof));
        let profile = monitor.finish();
        let intervals = prof.finish();
        if let Some(cache) = &self.cache {
            cache.put(&self.loop_key(), &profile);
            cache.put(&self.fine_key(), &intervals);
        }
        self.loop_profile = Some(profile);
        self.fine_intervals = Some(intervals);
    }

    /// Segment targets for an `N`-way partition of the trace: shard `k`
    /// owns blocks whose first instruction lands in
    /// `[targets[k], targets[k+1])`. Targets derive from the spec's
    /// nominal length (O(1) — no trace-length pre-pass); the last shard
    /// absorbs the generator's stochastic drift by running to the end
    /// of the stream. Both sides of every boundary apply the same rule,
    /// so the partition is exact, gap-free, and overlap-free for any
    /// actual trace length.
    fn shard_targets(&self, shards: usize) -> Vec<u64> {
        let nominal = self.cb.spec().nominal_insts().max(1);
        let mut t: Vec<u64> = (0..shards as u64).map(|k| k * nominal / shards as u64).collect();
        t.push(u64::MAX);
        t
    }

    /// The combined pass, sharded: each worker fast-forwards to its
    /// segment with the metadata walk (cursor skips instead of
    /// instruction materialisation, running O(1)-per-block trackers to
    /// align the profiler state), profiles its slice, and the shards
    /// merge bit-identically to the monolithic pass. Per-shard products
    /// go through the artifact cache, so a killed run resumes at the
    /// last completed segment.
    fn prepare_sharded(&mut self) {
        let _span = mlpa_obs::span("core.profile.shard_pass");
        mlpa_obs::add("core.profile.shard_passes", 1);
        let shards = self.shards;
        let targets = self.shard_targets(shards);
        let keys: Vec<CacheKey> = (0..shards).map(|k| self.profile_shard_key(shards, k)).collect();
        let arts = if self.driver.threaded() {
            self.profile_shards_threaded(&targets, &keys)
        } else {
            self.profile_shards_chained(&targets, &keys)
        };
        let mut pieces = Vec::with_capacity(shards);
        let mut loops = Vec::with_capacity(shards);
        for a in arts {
            pieces.push(a.pieces);
            loops.push(a.loops);
        }
        let intervals = merge_fine(pieces);
        let profile = merge_loops(loops);
        if let Some(cache) = &self.cache {
            cache.put(&self.loop_key(), &profile);
            cache.put(&self.fine_key(), &intervals);
        }
        self.loop_profile = Some(profile);
        self.fine_intervals = Some(intervals);
    }

    /// Chained driver for the combined pass: stream the trace once,
    /// carrying the cut/stack trackers continuously, and hand each
    /// consecutive segment to freshly seeded shard profilers. No prefix
    /// is ever replayed, so the whole pass costs one metadata walk plus
    /// the O(1)-per-block profilers — the fast path on a single core.
    /// Cache-hit segments still advance the stream and trackers (to
    /// keep alignment) but skip the profiler work.
    fn profile_shards_chained(
        &self,
        targets: &[u64],
        keys: &[CacheKey],
    ) -> Vec<ProfileShardArtifact> {
        let cache = self.cache.clone();
        let mut stream = WorkloadStream::new(self.cb);
        let mut scratch = Vec::new();
        let mut fine_t = FineCutTracker::new(self.fine_interval);
        let mut loop_t = LoopStackTracker::new(self.cb.program());
        let mut arts = Vec::with_capacity(keys.len());
        for (k, key) in keys.iter().enumerate() {
            let t_end = targets[k + 1];
            if let Some(a) = cache.as_ref().and_then(|c| c.get::<ProfileShardArtifact>(key)) {
                mlpa_obs::add("core.profile.shard_resumes", 1);
                while stream.emitted() < t_end {
                    let Some(m) = stream.next_block_meta(&mut scratch) else { break };
                    fine_t.record(m.insts);
                    loop_t.record(m.id);
                }
                arts.push(a);
                continue;
            }
            let _span = mlpa_obs::span("core.profile.shard");
            mlpa_obs::add("core.profile.shards_run", 1);
            mlpa_obs::gauge_set("core.shard.total", keys.len() as u64);
            mlpa_obs::gauge_set("core.shard.segment", k as u64);
            let mut prof = ShardFineProfiler::new(&self.projection, self.fine_interval, &fine_t);
            let mut mon = ShardLoopMonitor::new(loop_t.clone());
            while stream.emitted() < t_end {
                let Some(m) = stream.next_block_meta(&mut scratch) else { break };
                fine_t.record(m.insts);
                loop_t.record(m.id);
                prof.record(m.id, m.insts);
                mon.record(m.id, m.insts);
            }
            let art = ProfileShardArtifact { pieces: prof.finish(), loops: mon.finish() };
            if let Some(c) = &cache {
                c.put(key, &art);
            }
            arts.push(art);
        }
        arts
    }

    /// Threaded driver for the combined pass: one scoped worker per
    /// segment, each fast-forwarding through its prefix with the
    /// metadata walk before profiling its slice.
    fn profile_shards_threaded(
        &self,
        targets: &[u64],
        keys: &[CacheKey],
    ) -> Vec<ProfileShardArtifact> {
        let cb = self.cb;
        let projection = &self.projection;
        let fine_interval = self.fine_interval;
        let cache = self.cache.clone();
        std::thread::scope(|scope| {
            let handles: Vec<_> = keys
                .iter()
                .enumerate()
                .map(|(k, key)| {
                    let cache = cache.clone();
                    let targets = &targets;
                    scope.spawn(move || {
                        if let Some(c) = &cache {
                            if let Some(a) = c.get::<ProfileShardArtifact>(key) {
                                mlpa_obs::add("core.profile.shard_resumes", 1);
                                return a;
                            }
                        }
                        let _span = mlpa_obs::span("core.profile.shard");
                        mlpa_obs::add("core.profile.shards_run", 1);
                        // Last-write-wins: with concurrent shards the
                        // gauge tracks whichever segment started most
                        // recently, which is the live view we want.
                        mlpa_obs::gauge_set("core.shard.total", targets.len() as u64 - 1);
                        mlpa_obs::gauge_set("core.shard.segment", k as u64);
                        let (t_begin, t_end) = (targets[k], targets[k + 1]);
                        let mut stream = WorkloadStream::new(cb);
                        let mut scratch = Vec::new();
                        let mut fine_t = FineCutTracker::new(fine_interval);
                        let mut loop_t = LoopStackTracker::new(cb.program());
                        while stream.emitted() < t_begin {
                            let Some(m) = stream.next_block_meta(&mut scratch) else { break };
                            fine_t.record(m.insts);
                            loop_t.record(m.id);
                        }
                        let mut prof = ShardFineProfiler::new(projection, fine_interval, &fine_t);
                        let mut mon = ShardLoopMonitor::new(loop_t);
                        while stream.emitted() < t_end {
                            let Some(m) = stream.next_block_meta(&mut scratch) else { break };
                            prof.record(m.id, m.insts);
                            mon.record(m.id, m.insts);
                        }
                        let art =
                            ProfileShardArtifact { pieces: prof.finish(), loops: mon.finish() };
                        if let Some(c) = &cache {
                            c.put(key, &art);
                        }
                        art
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        })
    }

    /// The boundary pass, sharded (see [`ProfilingContext::prepare`]'s
    /// sharded variant): per-segment boundary pieces merge into the
    /// monolithic pass's output bit-for-bit.
    fn boundary_pass_sharded(&self, header: mlpa_isa::BlockId) -> (Vec<Interval>, bool) {
        let _span = mlpa_obs::span("core.profile.shard_boundary_pass");
        let shards = self.shards;
        let targets = self.shard_targets(shards);
        let keys: Vec<CacheKey> =
            (0..shards).map(|k| self.boundary_shard_key(header, shards, k)).collect();
        let arts = if self.driver.threaded() {
            self.boundary_shards_threaded(&targets, &keys, header)
        } else {
            self.boundary_shards_chained(&targets, &keys, header)
        };
        merge_boundary(arts.into_iter().map(|a| (a.pieces, a.first_header_pos)))
    }

    /// Chained driver for the boundary pass — single stream, no prefix
    /// replay, tracker carried across segment boundaries (see
    /// [`ProfilingContext::profile_shards_chained`]).
    fn boundary_shards_chained(
        &self,
        targets: &[u64],
        keys: &[CacheKey],
        header: mlpa_isa::BlockId,
    ) -> Vec<BoundaryShardArtifact> {
        let cache = self.cache.clone();
        let mut stream = WorkloadStream::new(self.cb);
        let mut scratch = Vec::new();
        let mut tracker = BoundaryTracker::new(header);
        let mut arts = Vec::with_capacity(keys.len());
        for (k, key) in keys.iter().enumerate() {
            let t_end = targets[k + 1];
            if let Some(a) = cache.as_ref().and_then(|c| c.get::<BoundaryShardArtifact>(key)) {
                mlpa_obs::add("core.profile.shard_resumes", 1);
                while stream.emitted() < t_end {
                    let Some(m) = stream.next_block_meta(&mut scratch) else { break };
                    tracker.record(m.id, m.insts);
                }
                arts.push(a);
                continue;
            }
            let _span = mlpa_obs::span("core.profile.shard");
            mlpa_obs::add("core.profile.shards_run", 1);
            mlpa_obs::gauge_set("core.shard.total", keys.len() as u64);
            mlpa_obs::gauge_set("core.shard.segment", k as u64);
            let mut prof = ShardBoundaryProfiler::new(&self.projection, &tracker);
            while stream.emitted() < t_end {
                let Some(m) = stream.next_block_meta(&mut scratch) else { break };
                tracker.record(m.id, m.insts);
                prof.record(m.id, m.insts);
            }
            let (pieces, first_header_pos) = prof.finish();
            let art = BoundaryShardArtifact { pieces, first_header_pos };
            if let Some(c) = &cache {
                c.put(key, &art);
            }
            arts.push(art);
        }
        arts
    }

    /// Threaded driver for the boundary pass — one scoped worker per
    /// segment with prefix fast-forward.
    fn boundary_shards_threaded(
        &self,
        targets: &[u64],
        keys: &[CacheKey],
        header: mlpa_isa::BlockId,
    ) -> Vec<BoundaryShardArtifact> {
        let cb = self.cb;
        let projection = &self.projection;
        let cache = self.cache.clone();
        std::thread::scope(|scope| {
            let handles: Vec<_> = keys
                .iter()
                .enumerate()
                .map(|(k, key)| {
                    let cache = cache.clone();
                    let targets = &targets;
                    scope.spawn(move || {
                        if let Some(c) = &cache {
                            if let Some(a) = c.get::<BoundaryShardArtifact>(key) {
                                mlpa_obs::add("core.profile.shard_resumes", 1);
                                return a;
                            }
                        }
                        let _span = mlpa_obs::span("core.profile.shard");
                        mlpa_obs::add("core.profile.shards_run", 1);
                        mlpa_obs::gauge_set("core.shard.total", targets.len() as u64 - 1);
                        mlpa_obs::gauge_set("core.shard.segment", k as u64);
                        let (t_begin, t_end) = (targets[k], targets[k + 1]);
                        let mut stream = WorkloadStream::new(cb);
                        let mut scratch = Vec::new();
                        let mut tracker = BoundaryTracker::new(header);
                        while stream.emitted() < t_begin {
                            let Some(m) = stream.next_block_meta(&mut scratch) else { break };
                            tracker.record(m.id, m.insts);
                        }
                        let mut prof = ShardBoundaryProfiler::new(projection, &tracker);
                        while stream.emitted() < t_end {
                            let Some(m) = stream.next_block_meta(&mut scratch) else { break };
                            prof.record(m.id, m.insts);
                        }
                        let (pieces, first_header_pos) = prof.finish();
                        let art = BoundaryShardArtifact { pieces, first_header_pos };
                        if let Some(c) = &cache {
                            c.put(key, &art);
                        }
                        art
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        })
    }

    /// The loop (cyclic-structure) profile of the trace.
    pub fn loop_profile(&mut self) -> &LoopProfile {
        if self.loop_profile.is_none() {
            if let Some(cache) = &self.cache {
                self.loop_profile = cache.get::<LoopProfile>(&self.loop_key());
            }
        }
        if self.loop_profile.is_none() {
            let _span = mlpa_obs::span("core.profile.loop_pass");
            mlpa_obs::add("core.profile.loop_passes", 1);
            let mut monitor = LoopMonitor::new(self.cb.program());
            FunctionalSim::new(self.cb.program()).run(WorkloadStream::new(self.cb), &mut monitor);
            let profile = monitor.finish();
            if let Some(cache) = &self.cache {
                cache.put(&self.loop_key(), &profile);
            }
            self.loop_profile = Some(profile);
        }
        self.loop_profile.as_ref().expect("just computed")
    }

    /// Fixed-length intervals at the context's fine interval length.
    pub fn fine_intervals(&mut self) -> &[Interval] {
        if self.fine_intervals.is_none() {
            if let Some(cache) = &self.cache {
                self.fine_intervals = cache.get::<Vec<Interval>>(&self.fine_key());
            }
        }
        if self.fine_intervals.is_none() {
            let intervals = profile_fixed(self.cb, self.fine_interval, &self.projection);
            if let Some(cache) = &self.cache {
                cache.put(&self.fine_key(), &intervals);
            }
            self.fine_intervals = Some(intervals);
        }
        self.fine_intervals.as_ref().expect("just computed")
    }

    /// Variable-length intervals cut at iterations of the cyclic
    /// structure headed by `header`, plus whether the trace has a
    /// prologue before the first header entry. Cached per header.
    pub fn boundary_intervals(&mut self, header: mlpa_isa::BlockId) -> (&[Interval], bool) {
        let stale = self.boundary.as_ref().is_none_or(|b| b.header != header);
        if stale {
            if let Some(cache) = &self.cache {
                if let Some(b) = cache.get::<BoundaryArtifact>(&self.boundary_key(header)) {
                    self.boundary = Some(BoundaryPass {
                        header: mlpa_isa::BlockId::new(b.header),
                        has_prologue: b.has_prologue,
                        intervals: b.intervals,
                    });
                }
            }
        }
        let stale = self.boundary.as_ref().is_none_or(|b| b.header != header);
        if stale {
            let _span = mlpa_obs::span("core.profile.boundary_pass");
            mlpa_obs::add("core.profile.boundary_passes", 1);
            let (intervals, has_prologue) = if self.shards > 1 {
                self.boundary_pass_sharded(header)
            } else {
                let mut prof = BoundaryProfiler::new(&self.projection, header);
                FunctionalSim::new(self.cb.program()).run(WorkloadStream::new(self.cb), &mut prof);
                let has_prologue = prof.has_prologue();
                (prof.finish(), has_prologue)
            };
            if let Some(cache) = &self.cache {
                cache.put(
                    &self.boundary_key(header),
                    &BoundaryArtifact {
                        header: header.raw(),
                        has_prologue,
                        intervals: intervals.clone(),
                    },
                );
            }
            self.boundary = Some(BoundaryPass { header, has_prologue, intervals });
        }
        let b = self.boundary.as_ref().expect("just computed");
        (&b.intervals, b.has_prologue)
    }
}

/// Measure a benchmark's exact trace length (total instruction count)
/// with one metadata drain of the stream: all control-flow draws run,
/// but no instruction words are materialised, so this costs a fraction
/// of a functional pass. `CompiledBenchmark` does not record the length
/// statically, so plan/trace compatibility checks (see
/// [`crate::estimate::execute_plan_checked`]) measure it here.
pub fn trace_insts(cb: &CompiledBenchmark) -> u64 {
    let _span = mlpa_obs::span("core.profile.trace_len");
    mlpa_isa::stream::drain_meta_count(WorkloadStream::new(cb)).instructions
}

/// Profile a benchmark into fixed-length intervals (one functional
/// pass).
pub fn profile_fixed(
    cb: &CompiledBenchmark,
    interval_len: u64,
    proj: &RandomProjection,
) -> Vec<Interval> {
    let mut prof = FixedLengthProfiler::new(proj, interval_len);
    FunctionalSim::new(cb.program()).run(WorkloadStream::new(cb), &mut prof);
    prof.finish()
}

/// Convert selected simulation points into an executable plan.
///
/// # Errors
///
/// Propagates [`SimulationPlan::new`]'s validation errors (they indicate
/// a profiler or selector bug, not user error).
pub fn plan_from_points(sp: &SimPoints) -> Result<SimulationPlan, String> {
    let points = sp
        .points
        .iter()
        .map(|p| PlanPoint { start: p.start, len: p.len, weight: p.weight })
        .collect();
    SimulationPlan::new(points, sp.total_insts)
}

/// Outcome of a fine-grained (SimPoint-baseline) selection.
#[derive(Debug, Clone, PartialEq)]
pub struct FineOutcome {
    /// The executable plan.
    pub plan: SimulationPlan,
    /// The raw selection (clusters, BIC diagnostics).
    pub simpoints: SimPoints,
    /// Interval length used.
    pub interval_len: u64,
}

/// The paper's baseline: fixed-length SimPoint (10 M-equivalent
/// intervals, `Kmax = 30`).
///
/// # Errors
///
/// Returns an error if the trace is empty (a spec that generates no
/// instructions).
///
/// # Example
///
/// ```
/// use mlpa_core::pipeline::{simpoint_baseline, ProjectionSettings, FINE_INTERVAL};
/// use mlpa_phase::simpoint::SimPointConfig;
/// use mlpa_workloads::{spec::BenchmarkSpec, CompiledBenchmark};
///
/// let cb = CompiledBenchmark::compile(&BenchmarkSpec::default())?;
/// let out = simpoint_baseline(
///     &cb,
///     FINE_INTERVAL,
///     &SimPointConfig::fine_10m(),
///     &ProjectionSettings::default(),
/// )?;
/// assert!(out.plan.len() >= 1);
/// # Ok::<(), String>(())
/// ```
pub fn simpoint_baseline(
    cb: &CompiledBenchmark,
    interval_len: u64,
    cfg: &SimPointConfig,
    proj: &ProjectionSettings,
) -> Result<FineOutcome, String> {
    let mut ctx = ProfilingContext::new(cb, *proj, interval_len);
    simpoint_baseline_with(&mut ctx, cfg)
}

/// [`simpoint_baseline`] on a shared [`ProfilingContext`]: reuses (or
/// populates) the context's fine-interval profile instead of running a
/// dedicated functional pass. The interval length is the context's.
///
/// # Errors
///
/// Returns an error if the trace is empty (a spec that generates no
/// instructions).
pub fn simpoint_baseline_with(
    ctx: &mut ProfilingContext<'_>,
    cfg: &SimPointConfig,
) -> Result<FineOutcome, String> {
    let _span = mlpa_obs::span("core.select.fine");
    let cache = ctx.cache();
    let key = cache.as_ref().map(|_| ctx.fine_key().field("selection", cfg));
    if let (Some(c), Some(k)) = (&cache, &key) {
        if let Some(out) = c.get::<FineOutcome>(k) {
            return Ok(out);
        }
    }
    let interval_len = ctx.fine_interval;
    let intervals = ctx.fine_intervals();
    if intervals.is_empty() {
        return Err(format!("benchmark {} produced an empty trace", ctx.cb.spec().name));
    }
    mlpa_obs::add("core.profile.fine_intervals", intervals.len() as u64);
    let simpoints = select(intervals, cfg);
    let plan = plan_from_points(&simpoints)?;
    let out = FineOutcome { plan, simpoints, interval_len };
    if let (Some(c), Some(k)) = (&cache, &key) {
        c.put(k, &out);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlpa_workloads::spec::{BenchmarkSpec, PhaseSpec, ScriptEntry};

    fn two_phase_cb() -> CompiledBenchmark {
        let spec = BenchmarkSpec {
            phases: vec![
                PhaseSpec { name: "a".into(), ..PhaseSpec::default() },
                PhaseSpec { name: "b".into(), ..PhaseSpec::default() },
            ],
            script: (0..8).map(|i| ScriptEntry::new(i % 2, 50_000)).collect(),
            ..BenchmarkSpec::default()
        };
        CompiledBenchmark::compile(&spec).unwrap()
    }

    #[test]
    fn baseline_produces_valid_plan() {
        let cb = two_phase_cb();
        let out = simpoint_baseline(
            &cb,
            FINE_INTERVAL,
            &mlpa_phase::simpoint::SimPointConfig::fine_10m(),
            &ProjectionSettings::default(),
        )
        .unwrap();
        assert!(out.plan.len() >= 2, "two phases need at least two points");
        assert!(out.plan.detail_fraction() < 0.5);
        // Fine plan points are one interval long (the trailing partial
        // interval may be shorter).
        let total = out.plan.total_insts();
        for p in out.plan.points() {
            assert!(p.len < FINE_INTERVAL + 200);
            assert!(p.len >= FINE_INTERVAL || p.end() == total, "short non-final point");
        }
    }

    #[test]
    fn scaled_constants_match_paper_ratios() {
        // 10 M / 1000 and 10 M × 30 / 1000.
        assert_eq!(FINE_INTERVAL, 10_000);
        assert_eq!(RESAMPLE_THRESHOLD, 30 * FINE_INTERVAL);
    }

    #[test]
    fn projection_settings_are_stable() {
        let cb = two_phase_cb();
        let a = ProjectionSettings::default().build(&cb);
        let b = ProjectionSettings::default().build(&cb);
        let raw = vec![1.0; cb.program().num_blocks()];
        assert_eq!(a.project(&raw), b.project(&raw));
    }

    #[test]
    fn plan_matches_simpoints_accounting() {
        let cb = two_phase_cb();
        let out = simpoint_baseline(
            &cb,
            FINE_INTERVAL,
            &mlpa_phase::simpoint::SimPointConfig::fine_10m(),
            &ProjectionSettings::default(),
        )
        .unwrap();
        assert_eq!(out.plan.detailed_insts(), out.simpoints.detailed_insts());
        assert!((out.plan.last_position() - out.simpoints.last_position()).abs() < 1e-12);
    }
}
