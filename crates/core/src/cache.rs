//! Content-addressed, crash-safe on-disk cache for pipeline artifacts.
//!
//! The paper's premise is amortization — profile and cluster once,
//! re-execute the cheap plan across many machine configurations — and
//! this module is what makes that amortization survive process
//! boundaries. Every expensive stage (profiling passes, SimPoint /
//! COASTS / multi-level selection, ground-truth simulation, plan
//! execution) can store its product here and skip recomputation on the
//! next run.
//!
//! # Key derivation
//!
//! An entry is addressed by a [`CacheKey`]: the concatenated `Debug`
//! renderings of everything the artifact depends on (benchmark spec
//! including scale, projection seed/dim, clustering config, machine
//! config, ...), plus the artifact kind and the cache schema version.
//! Derived `Debug` prints every field, so any config change — including
//! a field added in a future version — changes the key material. The
//! material is hashed (2 × FNV-1a 64) to name the file, and the *full*
//! material string is stored inside the entry and compared on load, so
//! a hash collision degrades to a miss, never to wrong data.
//!
//! # Integrity model
//!
//! Writes are crash-safe: the entry is written to a temp file in the
//! same directory, `fsync`ed, renamed over the final name, and the
//! directory is `fsync`ed — a crash at any point leaves either the old
//! entry or the new one, never a torn file. Reads verify the schema
//! version, artifact kind, payload length, FNV-1a checksum, and the
//! full key material; any mismatch deletes the entry and reports a
//! miss, so corrupt or stale data is regenerated, never trusted.
//!
//! # Observability
//!
//! Lookups and stores run under `core.cache.get` / `core.cache.put`
//! spans and maintain the `core.cache.{hits,misses,stores,
//! verify_failures,evictions}` counters, so a run report shows exactly
//! how warm a run was and the obs-diff gate can pin cache determinism.

use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::artifact::{Artifact, Dec, Enc};

/// Schema version baked into every key and entry header. Bump when the
/// artifact encoding changes; old entries then verify-fail and are
/// regenerated.
pub const CACHE_SCHEMA: &str = "mlpa-cache-v1";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

fn checksum(bytes: &[u8]) -> u64 {
    fnv1a(bytes, FNV_OFFSET)
}

/// Key material for one cache entry: `label=Debug;` fields appended in
/// order. Everything an artifact's content depends on must be pushed
/// here — the cache never guesses at invalidation.
#[derive(Debug, Clone, Default)]
pub struct CacheKey {
    material: String,
}

impl CacheKey {
    /// Start an empty key (the schema version is added by the store).
    pub fn new() -> CacheKey {
        CacheKey::default()
    }

    /// Append one dependency as its `Debug` rendering.
    pub fn field<T: std::fmt::Debug + ?Sized>(mut self, label: &str, value: &T) -> CacheKey {
        let _ = write!(self.material, "{label}={value:?};");
        self
    }

    /// The accumulated key material.
    pub fn material(&self) -> &str {
        &self.material
    }
}

/// Write `bytes` to `path` crash-safely: temp file in the same
/// directory, `fsync`, atomic rename, then `fsync` of the directory.
/// Readers observe either the previous contents or the new contents in
/// full — never a torn write.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), String> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let name = path
        .file_name()
        .ok_or_else(|| format!("{} has no file name", path.display()))?
        .to_string_lossy()
        .into_owned();
    let tmp = dir.join(format!(
        ".{name}.tmp.{}.{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let write = (|| -> std::io::Result<()> {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        Ok(())
    })();
    if let Err(e) = write {
        let _ = fs::remove_file(&tmp);
        return Err(format!("writing {}: {e}", tmp.display()));
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(format!("renaming into {}: {e}", path.display()));
    }
    // Make the rename itself durable; best-effort (some filesystems
    // reject directory fsync, and the data write above already synced).
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// A content-addressed artifact store rooted at one directory.
///
/// Cloneable handles are shared via `Arc`; the store itself is
/// stateless beyond its root and is safe to use from the parallel
/// suite workers (keys for distinct benchmarks never collide, and
/// same-key races resolve through the atomic rename).
#[derive(Debug)]
pub struct ArtifactCache {
    root: PathBuf,
    reuse: bool,
}

impl ArtifactCache {
    /// Open (creating if needed) a cache rooted at `root`. Entries are
    /// both written and reused; see [`ArtifactCache::set_reuse`].
    pub fn open(root: impl Into<PathBuf>) -> Result<ArtifactCache, String> {
        let root = root.into();
        fs::create_dir_all(&root)
            .map_err(|e| format!("creating cache dir {}: {e}", root.display()))?;
        Ok(ArtifactCache { root, reuse: true })
    }

    /// Control whether lookups may return stored entries. With reuse
    /// off the cache is record-only: every lookup misses (and is
    /// counted as a miss) but stores still happen — this is
    /// `mlpa-experiments --cache` without `--resume`.
    pub fn set_reuse(&mut self, reuse: bool) {
        self.reuse = reuse;
    }

    /// Whether lookups may return stored entries.
    pub fn reuse(&self) -> bool {
        self.reuse
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_for(&self, kind: &str, material: &str) -> PathBuf {
        // Two independent FNV-1a passes give a 128-bit name; the full
        // key material is verified on load, so a collision is a miss.
        let mut h1 = fnv1a(kind.as_bytes(), FNV_OFFSET);
        h1 = fnv1a(material.as_bytes(), h1);
        let mut h2 = fnv1a(kind.as_bytes(), FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15);
        h2 = fnv1a(material.as_bytes(), h2);
        self.root.join(kind).join(format!("{h1:016x}{h2:016x}.art"))
    }

    /// Look up an artifact. Returns `None` on a miss, when reuse is
    /// disabled, or when the stored entry fails verification (in which
    /// case the entry is deleted so it is regenerated, never trusted).
    pub fn get<A: Artifact>(&self, key: &CacheKey) -> Option<A> {
        let _span = mlpa_obs::span("core.cache.get");
        let path = self.path_for(A::KIND, key.material());
        if !self.reuse {
            mlpa_obs::add("core.cache.misses", 1);
            return None;
        }
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => {
                mlpa_obs::add("core.cache.misses", 1);
                return None;
            }
        };
        match verify_and_decode::<A>(&text, key.material()) {
            Ok(a) => {
                mlpa_obs::add("core.cache.hits", 1);
                Some(a)
            }
            Err(e) => {
                mlpa_obs::add("core.cache.verify_failures", 1);
                mlpa_obs::add("core.cache.misses", 1);
                if fs::remove_file(&path).is_ok() {
                    mlpa_obs::add("core.cache.evictions", 1);
                }
                mlpa_obs::vlog!("cache", "discarding bad entry {}: {e}", path.display());
                None
            }
        }
    }

    /// Store an artifact crash-safely. Failures are logged and counted
    /// but do not abort the pipeline — a cache that cannot be written
    /// degrades to recomputation, not to an error.
    pub fn put<A: Artifact>(&self, key: &CacheKey, value: &A) {
        let _span = mlpa_obs::span("core.cache.put");
        let mut enc = Enc::new();
        value.encode(&mut enc);
        let payload = enc.finish();
        let entry = format!(
            "# {CACHE_SCHEMA} kind={} len={} sum={:016x}\nkey={}\n{payload}",
            A::KIND,
            payload.len(),
            checksum(payload.as_bytes()),
            key.material(),
        );
        let path = self.path_for(A::KIND, key.material());
        if let Some(dir) = path.parent() {
            if let Err(e) = fs::create_dir_all(dir) {
                mlpa_obs::elog!("cache", "cannot create {}: {e}", dir.display());
                return;
            }
        }
        match atomic_write(&path, entry.as_bytes()) {
            Ok(()) => mlpa_obs::add("core.cache.stores", 1),
            Err(e) => mlpa_obs::elog!("cache", "store failed: {e}"),
        }
    }
}

fn verify_and_decode<A: Artifact>(text: &str, material: &str) -> Result<A, String> {
    let (header, rest) = text.split_once('\n').ok_or("missing entry header")?;
    let mut toks = header.split_whitespace();
    if toks.next() != Some("#") {
        return Err("bad header prefix".into());
    }
    if toks.next() != Some(CACHE_SCHEMA) {
        return Err(format!("schema is not {CACHE_SCHEMA}"));
    }
    let mut kind = None;
    let mut len = None;
    let mut sum = None;
    for t in toks {
        if let Some(v) = t.strip_prefix("kind=") {
            kind = Some(v);
        } else if let Some(v) = t.strip_prefix("len=") {
            len = v.parse::<usize>().ok();
        } else if let Some(v) = t.strip_prefix("sum=") {
            sum = u64::from_str_radix(v, 16).ok();
        }
    }
    if kind != Some(A::KIND) {
        return Err(format!("kind {kind:?} is not {:?}", A::KIND));
    }
    let len = len.ok_or("missing/bad len")?;
    let sum = sum.ok_or("missing/bad sum")?;
    let (key_line, payload) = rest.split_once('\n').ok_or("missing key line")?;
    let stored = key_line.strip_prefix("key=").ok_or("missing key prefix")?;
    if stored != material {
        return Err("key material mismatch (hash collision or stale entry)".into());
    }
    if payload.len() != len {
        return Err(format!("payload is {} bytes, header says {len}", payload.len()));
    }
    let got = checksum(payload.as_bytes());
    if got != sum {
        return Err(format!("checksum {got:016x} does not match header {sum:016x}"));
    }
    let mut dec = Dec::new(payload);
    let value = A::decode(&mut dec)?;
    dec.done()?;
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlanPoint, SimulationPlan};

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mlpa-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_plan() -> SimulationPlan {
        SimulationPlan::new(
            vec![
                PlanPoint { start: 0, len: 100, weight: 0.125 },
                PlanPoint { start: 300, len: 100, weight: 0.875 },
            ],
            1000,
        )
        .unwrap()
    }

    fn entry_path(cache: &ArtifactCache, key: &CacheKey) -> PathBuf {
        cache.path_for(SimulationPlan::KIND, key.material())
    }

    #[test]
    fn store_and_reload() {
        let root = tmp_root("roundtrip");
        let cache = ArtifactCache::open(&root).unwrap();
        let key = CacheKey::new().field("spec", "bench-a").field("n", &7u64);
        assert_eq!(cache.get::<SimulationPlan>(&key), None);
        let plan = sample_plan();
        cache.put(&key, &plan);
        assert_eq!(cache.get::<SimulationPlan>(&key), Some(plan));
        // A different key misses even with entries present.
        let other = CacheKey::new().field("spec", "bench-b").field("n", &7u64);
        assert_eq!(cache.get::<SimulationPlan>(&other), None);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn reuse_off_is_record_only() {
        let root = tmp_root("record");
        let mut cache = ArtifactCache::open(&root).unwrap();
        cache.set_reuse(false);
        let key = CacheKey::new().field("spec", "bench-a");
        let plan = sample_plan();
        cache.put(&key, &plan);
        assert_eq!(cache.get::<SimulationPlan>(&key), None, "record-only must not reuse");
        cache.set_reuse(true);
        assert_eq!(cache.get::<SimulationPlan>(&key), Some(plan));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_entries_are_discarded_and_regenerated() {
        let root = tmp_root("corrupt");
        let cache = ArtifactCache::open(&root).unwrap();
        let key = CacheKey::new().field("spec", "bench-a");
        let plan = sample_plan();

        // Bit flip in the payload.
        cache.put(&key, &plan);
        let path = entry_path(&cache, &key);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(cache.get::<SimulationPlan>(&key), None, "bit flip must be rejected");
        assert!(!path.exists(), "corrupt entry must be deleted");

        // Regeneration works after eviction.
        cache.put(&key, &plan);
        assert_eq!(cache.get::<SimulationPlan>(&key), Some(plan.clone()));

        // Truncation.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert_eq!(cache.get::<SimulationPlan>(&key), None, "truncation must be rejected");
        assert!(!path.exists());

        // Version mismatch.
        cache.put(&key, &plan);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.replacen(CACHE_SCHEMA, "mlpa-cache-v0", 1)).unwrap();
        assert_eq!(cache.get::<SimulationPlan>(&key), None, "old schema must be rejected");
        assert!(!path.exists());

        // Key-material mismatch (simulated hash collision): an entry
        // whose file name matches but whose key line differs.
        cache.put(&key, &plan);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.replacen("spec=\"bench-a\"", "spec=\"bench-x\"", 1)).unwrap();
        assert_eq!(cache.get::<SimulationPlan>(&key), None, "foreign key must be rejected");

        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp_files() {
        let root = tmp_root("atomic");
        fs::create_dir_all(&root).unwrap();
        let path = root.join("f.txt");
        atomic_write(&path, b"first").unwrap();
        atomic_write(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        let leftovers: Vec<_> = fs::read_dir(&root)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n != "f.txt")
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        let _ = fs::remove_dir_all(&root);
    }
}
