//! Content-addressed, crash-safe on-disk cache for pipeline artifacts.
//!
//! The paper's premise is amortization — profile and cluster once,
//! re-execute the cheap plan across many machine configurations — and
//! this module is what makes that amortization survive process
//! boundaries. Every expensive stage (profiling passes, SimPoint /
//! COASTS / multi-level selection, ground-truth simulation, plan
//! execution) can store its product here and skip recomputation on the
//! next run.
//!
//! # Key derivation
//!
//! An entry is addressed by a [`CacheKey`]: the concatenated `Debug`
//! renderings of everything the artifact depends on (benchmark spec
//! including scale, projection seed/dim, clustering config, machine
//! config, ...), plus the artifact kind and the cache schema version.
//! Derived `Debug` prints every field, so any config change — including
//! a field added in a future version — changes the key material. The
//! material is hashed (2 × FNV-1a 64) to name the file, and the *full*
//! material string is stored inside the entry and compared on load, so
//! a hash collision degrades to a miss, never to wrong data.
//!
//! # Integrity model
//!
//! Writes are crash-safe: the entry is written to a temp file in the
//! same directory, `fsync`ed, renamed over the final name, and the
//! directory is `fsync`ed — a crash at any point leaves either the old
//! entry or the new one, never a torn file. Reads verify the schema
//! version, artifact kind, payload length, FNV-1a checksum, and the
//! full key material; any mismatch deletes the entry and reports a
//! miss, so corrupt or stale data is regenerated, never trusted.
//!
//! # Size budget and eviction
//!
//! A cache opened for a long-running service ([`ArtifactCache::
//! set_budget`]) enforces a byte budget with LRU eviction. Recency is
//! a logical sequence number (no wall-clock, so behaviour is
//! deterministic and testable) tracked per entry in an index file at
//! the cache root, written crash-safely via [`atomic_write`]; after a
//! `kill -9` the index is reconciled against the entries actually on
//! disk, so untracked files are adopted (as coldest) and stale rows
//! dropped. Capacity evictions count `core.cache.evictions`;
//! corrupt-entry deletions count `core.cache.verify_evictions` — the
//! two are never conflated, because one is healthy steady-state
//! behaviour and the other is data loss.
//!
//! # In-flight deduplication
//!
//! [`Singleflight`] collapses concurrent identical computations: the
//! first caller for a key becomes the leader and computes, every
//! concurrent caller for the same key blocks on a condvar and receives
//! a clone of the leader's result. The `mlpa-serve` daemon wraps its
//! per-request pipeline in this, so N identical concurrent requests
//! cost one computation.
//!
//! # Observability
//!
//! Lookups and stores run under `core.cache.get` / `core.cache.put`
//! spans and maintain the `core.cache.{hits,misses,stores,
//! verify_failures,verify_evictions,evictions,read_errors}` counters
//! plus the `core.cache.bytes` gauge, so a run report shows exactly
//! how warm a run was and the obs-diff gate can pin cache determinism.
//! `read_errors` (transient I/O failures on lookup) is deliberately
//! separate from a plain miss: a daemon operator must be able to tell
//! disk trouble from a cold cache.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::artifact::{Artifact, Dec, Enc};

/// Schema version baked into every key and entry header. Bump when the
/// artifact encoding changes; old entries then verify-fail and are
/// regenerated.
pub const CACHE_SCHEMA: &str = "mlpa-cache-v1";

/// Schema tag on the LRU index file's header line. The index lives at
/// `<root>/.lru-index`, a name [`ArtifactCache::path_for`] can never
/// produce for an entry.
const LRU_INDEX_SCHEMA: &str = "mlpa-cache-lru-v1";
const LRU_INDEX_FILE: &str = ".lru-index";

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

fn checksum(bytes: &[u8]) -> u64 {
    fnv1a(bytes, FNV_OFFSET)
}

/// Key material for one cache entry: `label=Debug;` fields appended in
/// order. Everything an artifact's content depends on must be pushed
/// here — the cache never guesses at invalidation.
#[derive(Debug, Clone, Default)]
pub struct CacheKey {
    material: String,
}

impl CacheKey {
    /// Start an empty key (the schema version is added by the store).
    pub fn new() -> CacheKey {
        CacheKey::default()
    }

    /// Append one dependency as its `Debug` rendering.
    pub fn field<T: std::fmt::Debug + ?Sized>(mut self, label: &str, value: &T) -> CacheKey {
        let _ = write!(self.material, "{label}={value:?};");
        self
    }

    /// The accumulated key material.
    pub fn material(&self) -> &str {
        &self.material
    }
}

/// Write `bytes` to `path` crash-safely: temp file in the same
/// directory, `fsync`, atomic rename, then `fsync` of the directory.
/// Readers observe either the previous contents or the new contents in
/// full — never a torn write.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), String> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let name = path
        .file_name()
        .ok_or_else(|| format!("{} has no file name", path.display()))?
        .to_string_lossy()
        .into_owned();
    let tmp = dir.join(format!(
        ".{name}.tmp.{}.{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let write = (|| -> std::io::Result<()> {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        Ok(())
    })();
    if let Err(e) = write {
        let _ = fs::remove_file(&tmp);
        return Err(format!("writing {}: {e}", tmp.display()));
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(format!("renaming into {}: {e}", path.display()));
    }
    // Make the rename itself durable; best-effort (some filesystems
    // reject directory fsync, and the data write above already synced).
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// A content-addressed artifact store rooted at one directory.
///
/// Cloneable handles are shared via `Arc`; the store itself is
/// stateless beyond its root and is safe to use from the parallel
/// suite workers (keys for distinct benchmarks never collide, and
/// same-key races resolve through the atomic rename).
#[derive(Debug)]
pub struct ArtifactCache {
    root: PathBuf,
    reuse: bool,
    budget: Option<u64>,
    /// LRU accounting, present only while a budget is configured.
    /// Interior mutability because the cache is shared via `Arc`.
    lru: Mutex<Option<LruState>>,
}

/// In-memory image of the LRU index.
#[derive(Debug, Default)]
struct LruState {
    /// Logical clock: bumped on every store and hit. Persisted, so
    /// recency survives restarts; never wall-clock, so eviction order
    /// is deterministic.
    seq: u64,
    /// Total tracked entry bytes (what the budget is enforced on).
    total: u64,
    /// Entry path relative to the root -> (last-touch seq, bytes).
    /// Sorted map so eviction ties break deterministically by path.
    entries: BTreeMap<String, (u64, u64)>,
}

impl ArtifactCache {
    /// Open (creating if needed) a cache rooted at `root`. Entries are
    /// both written and reused; see [`ArtifactCache::set_reuse`].
    pub fn open(root: impl Into<PathBuf>) -> Result<ArtifactCache, String> {
        let root = root.into();
        fs::create_dir_all(&root)
            .map_err(|e| format!("creating cache dir {}: {e}", root.display()))?;
        Ok(ArtifactCache { root, reuse: true, budget: None, lru: Mutex::new(None) })
    }

    /// Control whether lookups may return stored entries. With reuse
    /// off the cache is record-only: every lookup misses (and is
    /// counted as a miss) but stores still happen — this is
    /// `mlpa-experiments --cache` without `--resume`.
    pub fn set_reuse(&mut self, reuse: bool) {
        self.reuse = reuse;
    }

    /// Whether lookups may return stored entries.
    pub fn reuse(&self) -> bool {
        self.reuse
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The configured byte budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Total bytes currently tracked by the LRU index (0 without a
    /// budget).
    pub fn tracked_bytes(&self) -> u64 {
        self.lru.lock().map_or(0, |g| g.as_ref().map_or(0, |s| s.total))
    }

    /// Configure (or clear) a byte-size budget with LRU eviction.
    ///
    /// Setting a budget loads the on-disk index, reconciles it against
    /// the entries actually present (files unknown to the index — e.g.
    /// written before a crash persisted it — are adopted as coldest),
    /// immediately evicts down to the budget, and persists the result.
    /// The store then stays under the budget after every store.
    ///
    /// # Errors
    ///
    /// Propagates directory-scan failures during reconciliation.
    pub fn set_budget(&mut self, budget: Option<u64>) -> Result<(), String> {
        self.budget = budget;
        let mut lru = self.lru.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match budget {
            None => {
                *lru = None;
            }
            Some(b) => {
                let mut state = self.load_index();
                self.reconcile(&mut state)?;
                self.enforce_budget(&mut state, b);
                self.persist_index(&state);
                mlpa_obs::gauge_set("core.cache.bytes", state.total);
                *lru = Some(state);
            }
        }
        Ok(())
    }

    fn rel_for(&self, kind: &str, material: &str) -> String {
        // Two independent FNV-1a passes give a 128-bit name; the full
        // key material is verified on load, so a collision is a miss.
        let mut h1 = fnv1a(kind.as_bytes(), FNV_OFFSET);
        h1 = fnv1a(material.as_bytes(), h1);
        let mut h2 = fnv1a(kind.as_bytes(), FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15);
        h2 = fnv1a(material.as_bytes(), h2);
        format!("{kind}/{h1:016x}{h2:016x}.art")
    }

    fn path_for(&self, kind: &str, material: &str) -> PathBuf {
        self.root.join(self.rel_for(kind, material))
    }

    fn index_path(&self) -> PathBuf {
        self.root.join(LRU_INDEX_FILE)
    }

    /// Parse the index file; a missing, stale, or corrupt index is an
    /// empty state — [`ArtifactCache::reconcile`] rebuilds it from the
    /// entries on disk (recency is lost, correctness is not).
    fn load_index(&self) -> LruState {
        let Ok(text) = fs::read_to_string(self.index_path()) else {
            return LruState::default();
        };
        let mut lines = text.lines();
        let mut state = LruState::default();
        let Some(header) = lines.next() else { return LruState::default() };
        let mut toks = header.split_whitespace();
        if toks.next() != Some("#") || toks.next() != Some(LRU_INDEX_SCHEMA) {
            return LruState::default();
        }
        for t in toks {
            if let Some(v) = t.strip_prefix("seq=") {
                state.seq = v.parse().unwrap_or(0);
            }
        }
        for line in lines {
            let mut parts = line.splitn(3, ' ');
            let (Some(at), Some(size), Some(rel)) = (parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            let (Ok(at), Ok(size)) = (at.parse::<u64>(), size.parse::<u64>()) else { continue };
            state.entries.insert(rel.to_string(), (at, size));
        }
        state
    }

    /// Make the index agree with the filesystem: drop rows whose entry
    /// is gone, adopt entry files the index does not know (atime 0 =
    /// evicted first), refresh sizes, and recompute the total.
    fn reconcile(&self, state: &mut LruState) -> Result<(), String> {
        let mut on_disk: BTreeMap<String, u64> = BTreeMap::new();
        let dirs = fs::read_dir(&self.root)
            .map_err(|e| format!("scanning cache root {}: {e}", self.root.display()))?;
        for dir in dirs {
            let dir = dir.map_err(|e| format!("scanning cache root: {e}"))?;
            if !dir.file_type().map(|t| t.is_dir()).unwrap_or(false) {
                continue;
            }
            let kind = dir.file_name().to_string_lossy().into_owned();
            let entries =
                fs::read_dir(dir.path()).map_err(|e| format!("scanning cache dir {kind}: {e}"))?;
            for entry in entries {
                let entry = entry.map_err(|e| format!("scanning cache dir {kind}: {e}"))?;
                let name = entry.file_name().to_string_lossy().into_owned();
                if !name.ends_with(".art") {
                    continue;
                }
                let size = entry.metadata().map(|m| m.len()).unwrap_or(0);
                on_disk.insert(format!("{kind}/{name}"), size);
            }
        }
        state.entries.retain(|rel, _| on_disk.contains_key(rel));
        for (rel, size) in on_disk {
            state.entries.entry(rel).and_modify(|e| e.1 = size).or_insert((0, size));
        }
        state.total = state.entries.values().map(|&(_, size)| size).sum();
        let max_atime = state.entries.values().map(|&(at, _)| at).max().unwrap_or(0);
        state.seq = state.seq.max(max_atime + 1);
        Ok(())
    }

    /// Write the index crash-safely. Called with the LRU lock held.
    fn persist_index(&self, state: &LruState) {
        let mut out = format!("# {LRU_INDEX_SCHEMA} seq={}\n", state.seq);
        for (rel, (at, size)) in &state.entries {
            let _ = writeln!(out, "{at} {size} {rel}");
        }
        if let Err(e) = atomic_write(&self.index_path(), out.as_bytes()) {
            mlpa_obs::elog!("cache", "cannot persist LRU index: {e}");
        }
    }

    /// Evict least-recently-used entries until `total <= budget`.
    /// Capacity evictions count `core.cache.evictions` — never the
    /// corruption counter.
    fn enforce_budget(&self, state: &mut LruState, budget: u64) {
        while state.total > budget {
            let victim = state
                .entries
                .iter()
                .min_by(|a, b| (a.1 .0, a.0).cmp(&(b.1 .0, b.0)))
                .map(|(rel, _)| rel.clone());
            let Some(rel) = victim else { break };
            let (_, size) = state.entries.remove(&rel).expect("victim present");
            state.total = state.total.saturating_sub(size);
            match fs::remove_file(self.root.join(&rel)) {
                Ok(()) => {
                    mlpa_obs::add("core.cache.evictions", 1);
                    mlpa_obs::vlog!("cache", "evicted {rel} ({size} bytes) for budget");
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => {
                    // Still dropped from accounting so the loop
                    // terminates; the orphan is re-adopted on the next
                    // reconcile.
                    mlpa_obs::elog!("cache", "cannot evict {rel}: {e}");
                }
            }
        }
    }

    /// Mark an entry as just-used (lookup hit). The bump is persisted
    /// with the next index write (store or eviction), trading a write
    /// per hit for slightly stale recency after a crash.
    fn touch(&self, kind: &str, material: &str) {
        let mut lru = self.lru.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(state) = lru.as_mut() {
            let rel = self.rel_for(kind, material);
            if let Some(e) = state.entries.get_mut(&rel) {
                e.0 = state.seq;
                state.seq += 1;
            }
        }
    }

    /// Track a freshly stored entry and enforce the budget.
    fn record_store(&self, kind: &str, material: &str, bytes: u64) {
        let mut lru = self.lru.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let Some(state) = lru.as_mut() else { return };
        let rel = self.rel_for(kind, material);
        let seq = state.seq;
        state.seq += 1;
        let old = state.entries.insert(rel, (seq, bytes));
        state.total = state.total.saturating_sub(old.map_or(0, |(_, s)| s)) + bytes;
        if let Some(b) = self.budget {
            self.enforce_budget(state, b);
        }
        self.persist_index(state);
        mlpa_obs::gauge_set("core.cache.bytes", state.total);
    }

    /// Drop an entry from the accounting (verify-failure deletion).
    fn forget(&self, kind: &str, material: &str) {
        let mut lru = self.lru.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(state) = lru.as_mut() {
            let rel = self.rel_for(kind, material);
            if let Some((_, size)) = state.entries.remove(&rel) {
                state.total = state.total.saturating_sub(size);
                self.persist_index(state);
                mlpa_obs::gauge_set("core.cache.bytes", state.total);
            }
        }
    }

    /// Look up an artifact. Returns `None` on a miss, when reuse is
    /// disabled, or when the stored entry fails verification (in which
    /// case the entry is deleted so it is regenerated, never trusted).
    pub fn get<A: Artifact>(&self, key: &CacheKey) -> Option<A> {
        let _span = mlpa_obs::span("core.cache.get");
        let path = self.path_for(A::KIND, key.material());
        if !self.reuse {
            mlpa_obs::add("core.cache.misses", 1);
            return None;
        }
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                mlpa_obs::add("core.cache.misses", 1);
                return None;
            }
            Err(e) => {
                // A present-but-unreadable entry is disk trouble, not a
                // cold cache; count it apart from the plain miss so a
                // daemon operator can tell the two failure modes apart.
                mlpa_obs::add("core.cache.read_errors", 1);
                mlpa_obs::add("core.cache.misses", 1);
                mlpa_obs::elog!("cache", "read error on {}: {e}", path.display());
                return None;
            }
        };
        match verify_and_decode::<A>(&text, key.material()) {
            Ok(a) => {
                mlpa_obs::add("core.cache.hits", 1);
                self.touch(A::KIND, key.material());
                Some(a)
            }
            Err(e) => {
                mlpa_obs::add("core.cache.verify_failures", 1);
                mlpa_obs::add("core.cache.misses", 1);
                if fs::remove_file(&path).is_ok() {
                    // Corruption deletions are counted apart from
                    // capacity (LRU) evictions: one is data loss, the
                    // other healthy steady state.
                    mlpa_obs::add("core.cache.verify_evictions", 1);
                    self.forget(A::KIND, key.material());
                }
                mlpa_obs::vlog!("cache", "discarding bad entry {}: {e}", path.display());
                None
            }
        }
    }

    /// Store an artifact crash-safely. Failures are logged and counted
    /// but do not abort the pipeline — a cache that cannot be written
    /// degrades to recomputation, not to an error.
    pub fn put<A: Artifact>(&self, key: &CacheKey, value: &A) {
        let _span = mlpa_obs::span("core.cache.put");
        let mut enc = Enc::new();
        value.encode(&mut enc);
        let payload = enc.finish();
        let entry = format!(
            "# {CACHE_SCHEMA} kind={} len={} sum={:016x}\nkey={}\n{payload}",
            A::KIND,
            payload.len(),
            checksum(payload.as_bytes()),
            key.material(),
        );
        let path = self.path_for(A::KIND, key.material());
        if let Some(dir) = path.parent() {
            if let Err(e) = fs::create_dir_all(dir) {
                mlpa_obs::elog!("cache", "cannot create {}: {e}", dir.display());
                return;
            }
        }
        match atomic_write(&path, entry.as_bytes()) {
            Ok(()) => {
                mlpa_obs::add("core.cache.stores", 1);
                self.record_store(A::KIND, key.material(), entry.len() as u64);
            }
            Err(e) => mlpa_obs::elog!("cache", "store failed: {e}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Singleflight: in-flight deduplication of identical computations
// ---------------------------------------------------------------------------

/// How a [`Singleflight::run`] call obtained its result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightRole {
    /// This call ran the computation.
    Leader,
    /// This call waited on a concurrent leader and received a clone of
    /// its result — the signal `mlpa-serve` counts as an in-flight
    /// dedup.
    Follower,
}

enum SlotState<V> {
    Running,
    Done(V),
    /// The leader's closure panicked; followers re-panic with this
    /// message rather than hanging forever.
    Failed(String),
}

struct Slot<V> {
    state: Mutex<SlotState<V>>,
    cv: Condvar,
}

/// Collapse concurrent identical computations onto one execution.
///
/// The first caller for a key becomes the *leader* and runs the
/// closure; callers arriving while it runs become *followers*, block
/// on a condvar, and receive a clone of the leader's result. Once the
/// leader finishes, the key is retired — a later call computes afresh
/// (the daemon's result cache is what makes *that* cheap).
///
/// Panic-safe: a panicking leader marks the slot failed and wakes all
/// followers (which then panic with the leader's message) instead of
/// leaving them blocked.
#[derive(Default)]
pub struct Singleflight<V: Clone> {
    slots: Mutex<HashMap<String, Arc<Slot<V>>>>,
}

impl<V: Clone> Singleflight<V> {
    /// An empty singleflight table.
    pub fn new() -> Singleflight<V> {
        Singleflight { slots: Mutex::new(HashMap::new()) }
    }

    /// Run `compute` for `key`, deduplicating against concurrent calls
    /// with the same key. Returns the result and this call's
    /// [`FlightRole`].
    ///
    /// # Panics
    ///
    /// Re-panics in followers when the leader's closure panicked.
    pub fn run<F: FnOnce() -> V>(&self, key: &str, compute: F) -> (V, FlightRole) {
        let (slot, leader) = {
            let mut slots = self.slots.lock().expect("singleflight map poisoned");
            match slots.get(key) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot = Arc::new(Slot {
                        state: Mutex::new(SlotState::Running),
                        cv: Condvar::new(),
                    });
                    slots.insert(key.to_string(), Arc::clone(&slot));
                    (slot, true)
                }
            }
        };

        if !leader {
            let mut state = slot.state.lock().expect("singleflight slot poisoned");
            loop {
                match &*state {
                    SlotState::Running => {
                        state = slot.cv.wait(state).expect("singleflight slot poisoned");
                    }
                    SlotState::Done(v) => return (v.clone(), FlightRole::Follower),
                    SlotState::Failed(msg) => {
                        panic!("singleflight leader panicked: {msg}");
                    }
                }
            }
        }

        // Leader path. The guard settles the slot on every exit —
        // including an unwind out of `compute` — so followers can
        // never be left waiting on a slot nobody will complete.
        struct Settle<'a, V: Clone> {
            flight: &'a Singleflight<V>,
            key: &'a str,
            slot: &'a Arc<Slot<V>>,
            done: bool,
        }
        impl<V: Clone> Drop for Settle<'_, V> {
            fn drop(&mut self) {
                if !self.done {
                    let msg = format!("computation for {:?} panicked", self.key);
                    *self.slot.state.lock().expect("singleflight slot poisoned") =
                        SlotState::Failed(msg);
                    self.slot.cv.notify_all();
                }
                self.flight
                    .slots
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .remove(self.key);
            }
        }
        let mut settle = Settle { flight: self, key, slot: &slot, done: false };
        let value = compute();
        *slot.state.lock().expect("singleflight slot poisoned") = SlotState::Done(value.clone());
        slot.cv.notify_all();
        settle.done = true;
        drop(settle);
        (value, FlightRole::Leader)
    }
}

fn verify_and_decode<A: Artifact>(text: &str, material: &str) -> Result<A, String> {
    let (header, rest) = text.split_once('\n').ok_or("missing entry header")?;
    let mut toks = header.split_whitespace();
    if toks.next() != Some("#") {
        return Err("bad header prefix".into());
    }
    if toks.next() != Some(CACHE_SCHEMA) {
        return Err(format!("schema is not {CACHE_SCHEMA}"));
    }
    let mut kind = None;
    let mut len = None;
    let mut sum = None;
    for t in toks {
        if let Some(v) = t.strip_prefix("kind=") {
            kind = Some(v);
        } else if let Some(v) = t.strip_prefix("len=") {
            len = v.parse::<usize>().ok();
        } else if let Some(v) = t.strip_prefix("sum=") {
            sum = u64::from_str_radix(v, 16).ok();
        }
    }
    if kind != Some(A::KIND) {
        return Err(format!("kind {kind:?} is not {:?}", A::KIND));
    }
    let len = len.ok_or("missing/bad len")?;
    let sum = sum.ok_or("missing/bad sum")?;
    let (key_line, payload) = rest.split_once('\n').ok_or("missing key line")?;
    let stored = key_line.strip_prefix("key=").ok_or("missing key prefix")?;
    if stored != material {
        return Err("key material mismatch (hash collision or stale entry)".into());
    }
    if payload.len() != len {
        return Err(format!("payload is {} bytes, header says {len}", payload.len()));
    }
    let got = checksum(payload.as_bytes());
    if got != sum {
        return Err(format!("checksum {got:016x} does not match header {sum:016x}"));
    }
    let mut dec = Dec::new(payload);
    let value = A::decode(&mut dec)?;
    dec.done()?;
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlanPoint, SimulationPlan};

    use crate::testobs::counter_lock;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mlpa-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_plan() -> SimulationPlan {
        SimulationPlan::new(
            vec![
                PlanPoint { start: 0, len: 100, weight: 0.125 },
                PlanPoint { start: 300, len: 100, weight: 0.875 },
            ],
            1000,
        )
        .unwrap()
    }

    fn entry_path(cache: &ArtifactCache, key: &CacheKey) -> PathBuf {
        cache.path_for(SimulationPlan::KIND, key.material())
    }

    #[test]
    fn store_and_reload() {
        let root = tmp_root("roundtrip");
        let cache = ArtifactCache::open(&root).unwrap();
        let key = CacheKey::new().field("spec", "bench-a").field("n", &7u64);
        assert_eq!(cache.get::<SimulationPlan>(&key), None);
        let plan = sample_plan();
        cache.put(&key, &plan);
        assert_eq!(cache.get::<SimulationPlan>(&key), Some(plan));
        // A different key misses even with entries present.
        let other = CacheKey::new().field("spec", "bench-b").field("n", &7u64);
        assert_eq!(cache.get::<SimulationPlan>(&other), None);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn reuse_off_is_record_only() {
        let root = tmp_root("record");
        let mut cache = ArtifactCache::open(&root).unwrap();
        cache.set_reuse(false);
        let key = CacheKey::new().field("spec", "bench-a");
        let plan = sample_plan();
        cache.put(&key, &plan);
        assert_eq!(cache.get::<SimulationPlan>(&key), None, "record-only must not reuse");
        cache.set_reuse(true);
        assert_eq!(cache.get::<SimulationPlan>(&key), Some(plan));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_entries_are_discarded_and_regenerated() {
        let root = tmp_root("corrupt");
        let cache = ArtifactCache::open(&root).unwrap();
        let key = CacheKey::new().field("spec", "bench-a");
        let plan = sample_plan();

        // Bit flip in the payload.
        cache.put(&key, &plan);
        let path = entry_path(&cache, &key);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert_eq!(cache.get::<SimulationPlan>(&key), None, "bit flip must be rejected");
        assert!(!path.exists(), "corrupt entry must be deleted");

        // Regeneration works after eviction.
        cache.put(&key, &plan);
        assert_eq!(cache.get::<SimulationPlan>(&key), Some(plan.clone()));

        // Truncation.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert_eq!(cache.get::<SimulationPlan>(&key), None, "truncation must be rejected");
        assert!(!path.exists());

        // Version mismatch.
        cache.put(&key, &plan);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.replacen(CACHE_SCHEMA, "mlpa-cache-v0", 1)).unwrap();
        assert_eq!(cache.get::<SimulationPlan>(&key), None, "old schema must be rejected");
        assert!(!path.exists());

        // Key-material mismatch (simulated hash collision): an entry
        // whose file name matches but whose key line differs.
        cache.put(&key, &plan);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.replacen("spec=\"bench-a\"", "spec=\"bench-x\"", 1)).unwrap();
        assert_eq!(cache.get::<SimulationPlan>(&key), None, "foreign key must be rejected");

        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn read_errors_are_distinguished_from_plain_misses() {
        let _g = counter_lock();
        let root = tmp_root("read-error");
        let cache = ArtifactCache::open(&root).unwrap();
        let key = CacheKey::new().field("spec", "bench-a");
        let errors_before = mlpa_obs::counter_value("core.cache.read_errors");

        // An absent entry is a plain miss, never a read error.
        assert_eq!(cache.get::<SimulationPlan>(&key), None);
        assert_eq!(mlpa_obs::counter_value("core.cache.read_errors"), errors_before);

        // A directory squatting on the entry path makes the read fail
        // with a non-NotFound error (EISDIR) — the reliable stand-in
        // for transient I/O trouble even when tests run as root, where
        // permission bits are ignored.
        let path = entry_path(&cache, &key);
        fs::create_dir_all(&path).unwrap();
        assert_eq!(cache.get::<SimulationPlan>(&key), None, "read error degrades to a miss");
        assert_eq!(
            mlpa_obs::counter_value("core.cache.read_errors"),
            errors_before + 1,
            "a failed read must be counted apart from a cold miss"
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[cfg(unix)]
    #[test]
    fn unreadable_permissions_entry_counts_as_read_error() {
        use std::os::unix::fs::PermissionsExt;
        let _g = counter_lock();
        let root = tmp_root("perm");
        let cache = ArtifactCache::open(&root).unwrap();
        let key = CacheKey::new().field("spec", "bench-a");
        cache.put(&key, &sample_plan());
        let path = entry_path(&cache, &key);
        fs::set_permissions(&path, fs::Permissions::from_mode(0o000)).unwrap();

        let errors_before = mlpa_obs::counter_value("core.cache.read_errors");
        let got = cache.get::<SimulationPlan>(&key);
        if got.is_none() {
            assert_eq!(
                mlpa_obs::counter_value("core.cache.read_errors"),
                errors_before + 1,
                "an unreadable entry must count as a read error"
            );
        }
        // A privileged process (root in CI containers) reads through
        // mode 000 and legitimately hits; the EISDIR-based test above
        // covers the counter in that environment.
        fs::set_permissions(&path, fs::Permissions::from_mode(0o644)).unwrap();
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corruption_deletions_count_verify_evictions_not_capacity_evictions() {
        let _g = counter_lock();
        let root = tmp_root("verify-evict");
        let cache = ArtifactCache::open(&root).unwrap();
        let key = CacheKey::new().field("spec", "bench-a");
        cache.put(&key, &sample_plan());
        let path = entry_path(&cache, &key);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();

        let verify_before = mlpa_obs::counter_value("core.cache.verify_evictions");
        let capacity_before = mlpa_obs::counter_value("core.cache.evictions");
        assert_eq!(cache.get::<SimulationPlan>(&key), None);
        assert!(!path.exists(), "corrupt entry must be deleted");
        assert_eq!(mlpa_obs::counter_value("core.cache.verify_evictions"), verify_before + 1);
        assert_eq!(
            mlpa_obs::counter_value("core.cache.evictions"),
            capacity_before,
            "corruption deletions must not inflate the capacity-eviction counter"
        );
        let _ = fs::remove_dir_all(&root);
    }

    /// One entry's on-disk size, measured with a throwaway cache (all
    /// budget tests below store the same plan under same-length keys,
    /// so every entry has this size).
    fn entry_size() -> u64 {
        let root = tmp_root("size-probe");
        let cache = ArtifactCache::open(&root).unwrap();
        let key = CacheKey::new().field("n", &0u32);
        cache.put(&key, &sample_plan());
        let size = fs::metadata(entry_path(&cache, &key)).unwrap().len();
        let _ = fs::remove_dir_all(&root);
        size
    }

    fn art_bytes_on_disk(root: &Path) -> u64 {
        let mut total = 0;
        for dir in fs::read_dir(root).unwrap() {
            let dir = dir.unwrap();
            if !dir.file_type().unwrap().is_dir() {
                continue;
            }
            for entry in fs::read_dir(dir.path()).unwrap() {
                let entry = entry.unwrap();
                if entry.file_name().to_string_lossy().ends_with(".art") {
                    total += entry.metadata().unwrap().len();
                }
            }
        }
        total
    }

    #[test]
    fn budget_evicts_least_recently_used_and_store_stays_under() {
        let _g = counter_lock();
        let size = entry_size();
        let budget = size * 2 + size / 2; // room for two entries, not three
        let root = tmp_root("budget");
        let mut cache = ArtifactCache::open(&root).unwrap();
        cache.set_budget(Some(budget)).unwrap();
        let keys: Vec<CacheKey> = (1..=3u32).map(|i| CacheKey::new().field("n", &i)).collect();

        let evictions_before = mlpa_obs::counter_value("core.cache.evictions");
        cache.put(&keys[0], &sample_plan());
        cache.put(&keys[1], &sample_plan());
        // Touch entry 0 so entry 1 becomes the LRU victim.
        assert!(cache.get::<SimulationPlan>(&keys[0]).is_some());
        cache.put(&keys[2], &sample_plan());

        assert!(
            cache.get::<SimulationPlan>(&keys[0]).is_some(),
            "recently touched entry must survive the eviction pass"
        );
        assert_eq!(
            cache.get::<SimulationPlan>(&keys[1]),
            None,
            "least-recently-used entry must be evicted"
        );
        assert!(cache.get::<SimulationPlan>(&keys[2]).is_some());
        assert_eq!(mlpa_obs::counter_value("core.cache.evictions"), evictions_before + 1);
        assert!(cache.tracked_bytes() <= budget);
        assert!(
            art_bytes_on_disk(&root) <= budget,
            "store exceeds budget: {} > {budget}",
            art_bytes_on_disk(&root)
        );
        assert_eq!(mlpa_obs::gauge_value("core.cache.bytes"), cache.tracked_bytes());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn budget_recency_survives_restart_via_the_index_file() {
        let _g = counter_lock();
        let size = entry_size();
        let root = tmp_root("budget-restart");
        let key_a = CacheKey::new().field("n", &1u32);
        let key_b = CacheKey::new().field("n", &2u32);
        {
            let mut cache = ArtifactCache::open(&root).unwrap();
            cache.set_budget(Some(size * 10)).unwrap();
            cache.put(&key_a, &sample_plan());
            cache.put(&key_b, &sample_plan());
        }
        // Restart with a budget that fits only one entry: the index
        // remembers A is older, so A is the one evicted.
        let mut cache = ArtifactCache::open(&root).unwrap();
        cache.set_budget(Some(size + size / 2)).unwrap();
        assert_eq!(cache.get::<SimulationPlan>(&key_a), None, "older entry evicted on reopen");
        assert!(cache.get::<SimulationPlan>(&key_b).is_some(), "newer entry kept");
        assert!(art_bytes_on_disk(&root) <= size + size / 2);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn budget_reconciles_entries_unknown_to_the_index() {
        let _g = counter_lock();
        let size = entry_size();
        let root = tmp_root("budget-crash");
        let key_a = CacheKey::new().field("n", &1u32);
        let key_b = CacheKey::new().field("n", &2u32);
        {
            // Entries written with no budget configured: the index
            // file never existed — the kill -9 shape.
            let cache = ArtifactCache::open(&root).unwrap();
            cache.put(&key_a, &sample_plan());
            cache.put(&key_b, &sample_plan());
        }
        assert!(!root.join(LRU_INDEX_FILE).exists());
        let mut cache = ArtifactCache::open(&root).unwrap();
        cache.set_budget(Some(size * 10)).unwrap();
        assert_eq!(cache.tracked_bytes(), size * 2, "untracked entries adopted on reopen");
        assert!(root.join(LRU_INDEX_FILE).exists(), "reconciled index persisted");
        // Adopted entries are evictable like any other.
        let mut cache = ArtifactCache::open(&root).unwrap();
        cache.set_budget(Some(size / 2)).unwrap();
        assert_eq!(art_bytes_on_disk(&root), 0, "budget below one entry clears the store");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn singleflight_retires_keys_after_completion() {
        let flight = Singleflight::<u32>::new();
        assert_eq!(flight.run("k", || 1), (1, FlightRole::Leader));
        // The key is retired, not cached: a later call recomputes.
        assert_eq!(flight.run("k", || 2), (2, FlightRole::Leader));
        // Distinct keys never interact.
        assert_eq!(flight.run("other", || 3), (3, FlightRole::Leader));
    }

    #[test]
    fn singleflight_collapses_concurrent_identical_computations() {
        const THREADS: usize = 8;
        let flight = Singleflight::<Vec<u8>>::new();
        let computes = AtomicU64::new(0);
        let barrier = std::sync::Barrier::new(THREADS);
        let results: Vec<(Vec<u8>, FlightRole)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        flight.run("shared-key", || {
                            computes.fetch_add(1, Ordering::SeqCst);
                            // Long enough that every thread released by
                            // the barrier reaches `run` while the leader
                            // is still computing.
                            std::thread::sleep(std::time::Duration::from_millis(200));
                            vec![0xAB; 64]
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(computes.load(Ordering::SeqCst), 1, "exactly one computation");
        let leaders = results.iter().filter(|(_, role)| *role == FlightRole::Leader).count();
        assert_eq!(leaders, 1, "exactly one leader");
        for (bytes, _) in &results {
            assert_eq!(bytes, &results[0].0, "all callers get byte-identical results");
        }
    }

    #[test]
    fn singleflight_leader_panic_wakes_followers_instead_of_hanging() {
        use std::panic::AssertUnwindSafe;
        let flight = Singleflight::<u32>::new();
        std::thread::scope(|s| {
            let leader = s.spawn(|| {
                std::panic::catch_unwind(AssertUnwindSafe(|| {
                    flight.run("k", || {
                        std::thread::sleep(std::time::Duration::from_millis(150));
                        panic!("leader boom");
                    })
                }))
            });
            // Join the flight while the leader is mid-computation.
            std::thread::sleep(std::time::Duration::from_millis(40));
            let follower =
                s.spawn(|| std::panic::catch_unwind(AssertUnwindSafe(|| flight.run("k", || 7))));
            assert!(leader.join().unwrap().is_err(), "leader panic propagates to leader");
            assert!(
                follower.join().unwrap().is_err(),
                "follower must observe the leader's panic, not hang"
            );
        });
        // The failed key is retired; the next call computes fresh.
        assert_eq!(flight.run("k", || 9), (9, FlightRole::Leader));
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp_files() {
        let root = tmp_root("atomic");
        fs::create_dir_all(&root).unwrap();
        let path = root.join("f.txt");
        atomic_write(&path, b"first").unwrap();
        atomic_write(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        let leftovers: Vec<_> = fs::read_dir(&root)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n != "f.txt")
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        let _ = fs::remove_dir_all(&root);
    }
}
