#!/usr/bin/env python3
"""Fill EXPERIMENTS.md's {{TOKENS}} from the files under results/.

Run after `mlpa-experiments all --measured-ratio`. Idempotent only on a
template containing tokens; keep the template in git.
"""
import csv
import re
import sys
from pathlib import Path

root = Path(__file__).resolve().parent.parent
res = root / "results"


def geomean_from(path):
    for line in (res / path).read_text().splitlines():
        if line.strip().startswith("GEOMEAN") or line.startswith("geomean"):
            m = re.search(r"([0-9.]+)x?", line.split(",")[-1])
            return float(m.group(1))
    raise SystemExit(f"no geomean in {path}")


rows = list(csv.DictReader((res / "full_results.csv").open()))


def row(bench, method):
    for r in rows:
        if r["benchmark"] == bench and r["method"].startswith(method):
            return r
    raise SystemExit(f"missing {bench}/{method}")


def table2(metric_idx, method, col):
    """Parse table2_deviation.txt: metric section, method row, column."""
    text = (res / "table2_deviation.txt").read_text().splitlines()
    section = -1
    for line in text:
        if line.startswith("---"):
            section += 1
            continue
        if section == metric_idx and line.split("|")[0].strip() == method:
            cells = re.findall(r"([0-9.]+)%", line)
            return float(cells[col])
    raise SystemExit(f"table2 {metric_idx}/{method}/{col}")


def table3(method, field):
    text = (res / "table3_stats.txt").read_text().splitlines()
    for line in text:
        if line.split("|")[0].strip() == method:
            nums = re.findall(r"([0-9.]+)", line.split("|")[1])
            return float(nums[field])
    raise SystemExit(f"table3 {method}/{field}")


def motivation():
    text = (res / "motivation.txt").read_text()
    m = re.search(r"mean coarse phases ([0-9.]+); mean last position ([0-9.]+)%", text)
    per = {}
    for line in text.splitlines():
        parts = line.split()
        if len(parts) == 4 and parts[0] not in ("bench", "mean"):
            per[parts[0]] = float(parts[2])
    return float(m.group(1)), float(m.group(2)), per


def fig1_last(granularity):
    last = 0
    total = 0
    for line in (res / "fig1_lucas.csv").read_text().splitlines()[1:]:
        g, idx, _pc1, sel = line.split(",")
        if g != granularity:
            continue
        total = max(total, int(idx))
        if sel == "1":
            last = max(last, int(idx))
    return 100.0 * last / max(total, 1)


mot_k, mot_pos, per_bench_pos = motivation()
log = Path("/tmp/experiments_full2.log").read_text()
measured_r = float(re.search(r"measured cost ratio r = ([0-9.]+)", log).group(1))

subs = {
    "MEASURED_R": f"{measured_r:.1f}",
    "FIG3_PAPER_R": f"{geomean_from('fig3_coasts_speedup_paper-implied.csv'):.2f}",
    "FIG3_MEASURED_R": f"{geomean_from('fig3_coasts_speedup_measured.csv'):.2f}",
    "FIG4_PAPER_R": f"{geomean_from('fig4_multilevel_speedup_paper-implied.csv'):.2f}",
    "FIG4_MEASURED_R": f"{geomean_from('fig4_multilevel_speedup_measured.csv'):.2f}",
    "GCC_COASTS": f"{float(row('gcc', 'COASTS')['speedup']):.2f}",
    "GCC_MULTI": f"{float(row('gcc', 'Multi')['speedup']):.2f}",
    "MOT_K": f"{mot_k:.1f}",
    "MOT_POS": f"{mot_pos:.1f}",
    "POS_GCC": f"{per_bench_pos['gcc']:.0f}",
    "POS_ART": f"{per_bench_pos['art']:.0f}",
    "POS_BZIP2": f"{per_bench_pos['bzip2']:.0f}",
    "T3_SP_PTS": f"{table3('10M SimPoint', 1):.1f}",
    "T3_SP_DET": f"{table3('10M SimPoint', 2):.3f}",
    "T3_SP_FUNC": f"{table3('10M SimPoint', 3):.2f}",
    "T3_CO_INT": f"{table3('COASTS', 0):.0f}",
    "T3_CO_PTS": f"{table3('COASTS', 1):.1f}",
    "T3_CO_DET": f"{table3('COASTS', 2):.3f}",
    "T3_CO_FUNC": f"{table3('COASTS', 3):.2f}",
    "T3_ML_INT": f"{table3('Multi-level Sampling', 0):.0f}",
    "T3_ML_PTS": f"{table3('Multi-level Sampling', 1):.1f}",
    "T3_ML_DET": f"{table3('Multi-level Sampling', 2):.3f}",
    "T3_ML_FUNC": f"{table3('Multi-level Sampling', 3):.2f}",
    "T2_SP_CPI_A": f"{table2(0, '10M SimPoint', 0):.2f}",
    "T2_CO_CPI_A": f"{table2(0, 'COASTS', 0):.2f}",
    "T2_ML_CPI_A": f"{table2(0, 'Multi-level Sampling', 0):.2f}",
    "T2_SP_CPI_AW": f"{table2(0, '10M SimPoint', 1):.2f}",
    "T2_CO_CPI_AW": f"{table2(0, 'COASTS', 1):.2f}",
    "T2_ML_CPI_AW": f"{table2(0, 'Multi-level Sampling', 1):.2f}",
    "T2_WORST_BENCH_VAL": f"{max(float(row('gzip', 'COASTS')['cpi_dev_a']), float(row('gzip', 'COASTS')['cpi_dev_b'])):.1f}",
    "FIG1_FINE_LAST": f"{fig1_last('fine'):.0f}",
    "FIG1_COARSE_LAST": f"{fig1_last('coarse'):.0f}",
}

path = root / "EXPERIMENTS.md"
text = path.read_text()
missing = []
for k, v in subs.items():
    token = "{{" + k + "}}"
    if token not in text:
        missing.append(k)
    text = text.replace(token, v)
leftover = re.findall(r"\{\{[A-Z0-9_]+\}\}", text)
path.write_text(text)
print("filled; unused tokens:", missing, "; leftover:", leftover)
