#!/bin/sh
# Regenerate the tracked phase-kernel performance baseline.
#
# Runs the substrate microbenchmarks (full sample counts) and writes
# results/BENCH_phase.json: per-bench min/mean/max timings plus the
# derived current-vs-naive speedups for the clustering pipeline, the
# BIC sweep, and the k-means kernel. The same run appends a snapshot to
# the top-level BENCH.json perf trajectory (label it with
# MLPA_BENCH_LABEL, e.g. the PR name). See EXPERIMENTS.md, "Bench
# baseline workflow".
#
# Every run starts by calibrating the host in-process (the ~0.4 s probe
# in mlpa_obs::calibrate): both output files carry the calibration and
# host blocks, and every bench records a machine-normalized cost
# (mean_ns / probe_ns) next to its raw nanoseconds. The CI perf-gate
# job replays this in smoke mode and gates a fresh candidate snapshot
# against the committed BENCH.json with `bench-gate` on those
# normalized costs. Before recording a baseline worth gating against,
# check the host is quiet:
#
#   cargo run --release -p mlpa-obs --example calprobe
#
# and prefer a run whose reported dispersion stays under ~5%.
#
# Usage: scripts/bench_phase.sh [output.json]
set -eu

cd "$(dirname "$0")/.."
out="${1:-results/BENCH_phase.json}"
# cargo runs bench binaries with the package dir as cwd; hand the
# binary absolute paths so the outputs land at the repo root.
case "$out" in
/*) ;;
*) out="$(pwd)/$out" ;;
esac

MLPA_BENCH_JSON="$out" MLPA_BENCH_TRAJECTORY="$(pwd)/BENCH.json" \
    cargo bench -p mlpa-bench --bench substrate_microbench
