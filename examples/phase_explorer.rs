//! Explore a benchmark's phase structure the way the paper's Fig. 1
//! does: detect its cyclic structures, profile coarse and fine
//! intervals, and print the first-principal-component curves with the
//! selected simulation points marked.
//!
//! ```text
//! cargo run --release --example phase_explorer [benchmark]
//! ```

use mlpa::phase::loops::LoopMonitor;
use mlpa::phase::pca::principal_components;
use mlpa::prelude::*;
use mlpa::sim::FunctionalSim;
use mlpa::workloads::{suite, CompiledBenchmark, WorkloadStream};

fn main() -> Result<(), String> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "lucas".into());
    let spec = suite::benchmark_with_iters(&name, 2)
        .ok_or_else(|| format!("unknown benchmark {name}"))?
        .scaled(0.3);
    let cb = CompiledBenchmark::compile(&spec)?;

    // 1. Cyclic structures (COASTS boundary collection).
    let mut mon = LoopMonitor::new(cb.program());
    FunctionalSim::new(cb.program()).run(WorkloadStream::new(&cb), &mut mon);
    let profile = mon.finish();
    println!("cyclic structures of {name} (coverage >= 1%):");
    for s in profile.significant(0.01) {
        println!(
            "  header {:>6}  depth {}  coverage {:>5.1}%  back-edges {}",
            s.header.to_string(),
            s.min_depth,
            s.coverage(profile.total_insts) * 100.0,
            s.back_edges
        );
    }

    // 2. Coarse intervals + COASTS selection.
    let co = coasts(&cb, &CoastsConfig::default())?;
    println!(
        "\ncoarse granularity: {} iteration intervals, {} phases, last point at {:.1}%",
        co.intervals.len(),
        co.simpoints.k,
        co.plan.last_position() * 100.0
    );
    print_curve(&co.intervals, co.plan.points().iter().map(|p| p.start).collect());

    // 3. Fine intervals + SimPoint selection.
    let fine = simpoint_baseline(
        &cb,
        FINE_INTERVAL,
        &SimPointConfig::fine_10m(),
        &ProjectionSettings::default(),
    )?;
    let proj = ProjectionSettings::default().build(&cb);
    let fine_ivs = mlpa::core::pipeline::profile_fixed(&cb, FINE_INTERVAL, &proj);
    println!(
        "\nfine granularity: {} intervals of 10k, {} phases, last point at {:.1}%",
        fine_ivs.len(),
        fine.simpoints.k,
        fine.plan.last_position() * 100.0
    );
    print_curve(&fine_ivs, fine.plan.points().iter().map(|p| p.start).collect());
    Ok(())
}

/// Down-sampled ASCII strip chart of the PC1 curve; `*` marks intervals
/// containing a selected simulation point.
fn print_curve(intervals: &[mlpa::phase::Interval], marks: Vec<u64>) {
    let data: Vec<Vec<f64>> = intervals.iter().map(|iv| iv.vector.clone()).collect();
    let pca = principal_components(&data, 1, 0);
    let scores = pca.scores(&data, 0);
    let (lo, hi) =
        scores.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &s| (l.min(s), h.max(s)));
    let span = (hi - lo).max(1e-12);
    let width = 100usize;
    let height = 12usize;
    let per_col = intervals.len().div_ceil(width);
    let mut grid = vec![vec![' '; width.min(intervals.len())]; height];
    for (col, chunk) in scores.chunks(per_col).enumerate() {
        let avg = chunk.iter().sum::<f64>() / chunk.len() as f64;
        let row = (((hi - avg) / span) * (height - 1) as f64).round() as usize;
        let base = col * per_col;
        let selected = (base..base + chunk.len())
            .any(|i| marks.iter().any(|&m| m >= intervals[i].start && m < intervals[i].end()));
        grid[row.min(height - 1)][col] = if selected { '*' } else { '.' };
    }
    for row in grid {
        println!("|{}", row.into_iter().collect::<String>());
    }
    println!("+{}", "-".repeat(width.min(intervals.len())));
}
