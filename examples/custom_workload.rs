//! Build a custom workload from scratch with the `mlpa-workloads` spec
//! API and sample it with the multi-level framework — the path a user
//! takes when their program of interest is not in the bundled suite.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use mlpa::prelude::*;
use mlpa::sim::MachineConfig;
use mlpa::workloads::behavior::{BranchPattern, InstMix, MemoryPattern};
use mlpa::workloads::{BenchmarkSpec, BlockSpec, CompiledBenchmark, PhaseSpec, ScriptEntry};

fn main() -> Result<(), String> {
    // A made-up "image pipeline": a cache-friendly decode phase, a
    // memory-hungry transform phase, and a branchy encode phase.
    let decode = PhaseSpec {
        name: "decode".into(),
        blocks: vec![
            BlockSpec {
                len: 20,
                mix: InstMix { load: 0.3, store: 0.1, ..InstMix::default() },
                mem: MemoryPattern::Strided { stride: 8, working_set: 8 * 1024 },
                branch: BranchPattern::Periodic { taken: 3, not_taken: 1 },
                ..BlockSpec::default()
            },
            BlockSpec { len: 28, weight: 1.5, ..BlockSpec::default() },
        ],
        inner_iter_insts: 1_200,
        noise: 0.25,
        ..PhaseSpec::default()
    };
    let transform = PhaseSpec {
        name: "transform".into(),
        blocks: vec![BlockSpec {
            len: 26,
            mix: InstMix::fp(),
            mem: MemoryPattern::Strided { stride: 8, working_set: 4 << 20 },
            dep_density: 0.5,
            ..BlockSpec::default()
        }],
        inner_iter_insts: 1_500,
        noise: 0.3,
        ..PhaseSpec::default()
    };
    let encode = PhaseSpec {
        name: "encode".into(),
        blocks: vec![BlockSpec {
            len: 18,
            branch: BranchPattern::Biased { p_taken: 0.45 },
            mem: MemoryPattern::RandomInSet { working_set: 64 * 1024 },
            ..BlockSpec::default()
        }],
        inner_iter_insts: 900,
        noise: 0.35,
        ..PhaseSpec::default()
    };

    // 40 frames: decode, transform, encode per frame.
    let mut script = Vec::new();
    for _ in 0..40 {
        script.push(ScriptEntry::new(0, 350_000));
        script.push(ScriptEntry::new(1, 500_000));
        script.push(ScriptEntry::new(2, 250_000));
    }
    let spec = BenchmarkSpec {
        name: "imagepipe".into(),
        seed: 2024,
        init_insts: 400_000,
        tail_insts: 50_000,
        phases: vec![decode, transform, encode],
        script,
    };
    spec.validate()?;
    println!("custom workload: {} nominal instructions", spec.nominal_insts());

    let cb = CompiledBenchmark::compile(&spec)?;
    let config = MachineConfig::table1_base();

    let multi = multilevel(&cb, &MultilevelConfig::default())?;
    println!(
        "multi-level plan: {} points, detail {:.3}%, functional {:.2}%",
        multi.plan.len(),
        multi.plan.detail_fraction() * 100.0,
        multi.plan.functional_fraction() * 100.0
    );

    let est = execute_plan(&cb, &config, &multi.plan, WarmupMode::Warmed).estimate;
    let truth = ground_truth(&cb, &config).estimate();
    let dev = est.deviation_from(&truth);
    println!("estimate: {est}");
    println!("truth:    {truth}");
    println!("deviation: {dev}");

    let fine = simpoint_baseline(
        &cb,
        FINE_INTERVAL,
        &SimPointConfig::fine_10m(),
        &ProjectionSettings::default(),
    )?;
    println!(
        "modelled speedup over 10M SimPoint: {:.2}x",
        CostModel::paper_implied().speedup(&fine.plan, &multi.plan)
    );
    Ok(())
}
