//! The motivating use case of sampling simulation: evaluating an
//! architectural design change across a benchmark subset *quickly*.
//!
//! We compare Table I Config A against Config B (bigger caches, slower
//! memory) on several benchmarks, using multi-level sampling instead of
//! full detailed simulation — and then check the verdicts against
//! ground truth.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use mlpa::prelude::*;
use mlpa::sim::MachineConfig;
use mlpa::workloads::{suite, CompiledBenchmark};

fn main() -> Result<(), String> {
    let names = ["gzip", "mcf", "swim", "eon"];
    let config_a = MachineConfig::table1_base();
    let config_b = MachineConfig::table1_sensitivity();
    println!("design question: does Config B (bigger caches, slower memory) beat Config A?");
    println!("Config A: {config_a}");
    println!("Config B: {config_b}\n");

    let mut agree = 0;
    for name in names {
        let spec = suite::benchmark_with_iters(name, 2)
            .ok_or_else(|| format!("unknown benchmark {name}"))?
            .scaled(0.25);
        let cb = CompiledBenchmark::compile(&spec)?;

        // Sampled verdict: one multi-level plan, executed per config.
        let t0 = std::time::Instant::now();
        let plan = multilevel(&cb, &MultilevelConfig::default())?.plan;
        let est_a = execute_plan(&cb, &config_a, &plan, WarmupMode::Warmed).estimate;
        let est_b = execute_plan(&cb, &config_b, &plan, WarmupMode::Warmed).estimate;
        let sampled_secs = t0.elapsed().as_secs_f64();

        // Ground-truth verdict: two full detailed runs.
        let t1 = std::time::Instant::now();
        let truth_a = ground_truth(&cb, &config_a).estimate();
        let truth_b = ground_truth(&cb, &config_b).estimate();
        let full_secs = t1.elapsed().as_secs_f64();

        let sampled_gain = (est_a.cpi - est_b.cpi) / est_a.cpi;
        let true_gain = (truth_a.cpi - truth_b.cpi) / truth_a.cpi;
        let same_verdict = (sampled_gain > 0.0) == (true_gain > 0.0);
        agree += i32::from(same_verdict);

        println!(
            "{name:>8}: sampled says B is {:+.1}% CPI vs A ({sampled_secs:.1}s); \
             truth says {:+.1}% ({full_secs:.1}s) -> {}",
            -sampled_gain * 100.0,
            -true_gain * 100.0,
            if same_verdict { "same verdict" } else { "VERDICT FLIPPED" }
        );
    }
    println!("\n{agree}/{} benchmarks: sampled design verdict matches ground truth", names.len());
    Ok(())
}
