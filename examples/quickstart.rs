//! Quickstart: sample one benchmark three ways and compare the
//! estimates, deviations, and modelled speedups.
//!
//! ```text
//! cargo run --release --example quickstart [benchmark] [scale]
//! ```

use mlpa::prelude::*;
use mlpa::sim::MachineConfig;
use mlpa::workloads::{suite, CompiledBenchmark};

fn main() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "gzip".into());
    let scale: f64 = args.next().map(|s| s.parse().expect("scale is a number")).unwrap_or(0.25);

    // 1. Build the workload (a calibrated synthetic SPEC2000 benchmark).
    let spec = suite::benchmark_with_iters(&name, 2)
        .ok_or_else(|| format!("unknown benchmark {name}"))?
        .scaled(scale);
    let cb = CompiledBenchmark::compile(&spec)?;
    println!("benchmark {name}: ~{}M instructions", spec.nominal_insts() / 1_000_000);

    // 2. Ground truth: full detailed simulation (what sampling avoids).
    let config = MachineConfig::table1_base();
    let t0 = std::time::Instant::now();
    let truth = ground_truth(&cb, &config).estimate();
    println!("ground truth (full detailed run, {:.1}s): {truth}", t0.elapsed().as_secs_f64());

    // 3. The three sampling methods.
    let fine = simpoint_baseline(
        &cb,
        FINE_INTERVAL,
        &SimPointConfig::fine_10m(),
        &ProjectionSettings::default(),
    )?;
    let coarse = coasts(&cb, &CoastsConfig::default())?;
    let multi = multilevel(&cb, &MultilevelConfig::default())?;

    // 4. Execute each plan and compare.
    let model = CostModel::paper_implied();
    println!(
        "\n{:<14} {:>6} {:>9} {:>12} {:>9} {:>9} {:>9}",
        "method", "points", "detail%", "functional%", "est CPI", "dCPI%", "speedup"
    );
    for (label, plan) in
        [("10M SimPoint", &fine.plan), ("COASTS", &coarse.plan), ("multi-level", &multi.plan)]
    {
        let est = execute_plan(&cb, &config, plan, WarmupMode::Warmed).estimate;
        let dev = est.deviation_from(&truth);
        println!(
            "{:<14} {:>6} {:>8.3}% {:>11.2}% {:>9.3} {:>8.2}% {:>8.2}x",
            label,
            plan.len(),
            plan.detail_fraction() * 100.0,
            plan.functional_fraction() * 100.0,
            est.cpi,
            dev.cpi * 100.0,
            model.speedup(&fine.plan, plan)
        );
    }
    println!("\n(speedups use the paper-implied detailed/functional cost ratio r = 32.5)");
    Ok(())
}
