#![warn(missing_docs)]

//! # mlpa — Multi-level Phase Analysis for Sampling Simulation
//!
//! A from-scratch Rust reproduction of *"Multi-level Phase Analysis for
//! Sampling Simulation"* (Li, Zhang, Chen, Zang — DATE 2013): the
//! COASTS coarse-grained sampling technique, the multi-level
//! (coarse + fine) sampling framework, a SimPoint baseline, and every
//! substrate they need — a cycle-level out-of-order simulator, a
//! functional simulator, BBV phase analysis, and a calibrated synthetic
//! SPEC2000-like benchmark suite.
//!
//! This crate is a façade: it re-exports the workspace's five library
//! crates so downstream users can depend on one name.
//!
//! | Layer | Crate | What it provides |
//! |---|---|---|
//! | [`isa`] | `mlpa-isa` | instructions, basic blocks, programs, reproducible RNG |
//! | [`workloads`] | `mlpa-workloads` | the synthetic SPEC2000 suite and trace generator |
//! | [`sim`] | `mlpa-sim` | functional + detailed simulators, caches, predictors |
//! | [`phase`] | `mlpa-phase` | BBVs, projection, k-means/BIC, PCA, loop detection, SimPoint |
//! | [`core`] | `mlpa-core` | COASTS, multi-level sampling, plans, evaluation, speedup model |
//!
//! # Quickstart
//!
//! ```
//! use mlpa::prelude::*;
//! use mlpa::workloads::{suite, CompiledBenchmark};
//!
//! // A small lucas instance (factor 1 script, 30 % size).
//! let spec = suite::benchmark_with_iters("lucas", 1).unwrap().scaled(0.3);
//! let cb = CompiledBenchmark::compile(&spec)?;
//!
//! // Build the three sampling plans.
//! let simpoint = simpoint_baseline(&cb, FINE_INTERVAL, &SimPointConfig::fine_10m(),
//!     &ProjectionSettings::default())?;
//! let multi = multilevel(&cb, &MultilevelConfig::default())?;
//!
//! // Multi-level needs far less functional simulation.
//! assert!(multi.plan.functional_fraction() < simpoint.plan.functional_fraction());
//! # Ok::<(), String>(())
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and the
//! `mlpa-experiments` binary (crate `mlpa-bench`) for the full
//! table/figure reproduction.

pub use mlpa_core as core;
pub use mlpa_isa as isa;
pub use mlpa_phase as phase;
pub use mlpa_sim as sim;
pub use mlpa_workloads as workloads;

/// One-stop imports for the common workflow (re-export of
/// [`mlpa_core::prelude`]).
pub mod prelude {
    pub use mlpa_core::prelude::*;
}
